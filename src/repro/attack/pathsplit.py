"""Path-aware recovery: exploiting leaked predicates.

Section 3 argues that once control flow is involved, "these pairs must be
divided into subgroups corresponding to different paths ... it is unclear
how this path based categorization can be achieved."  This module
implements the categorization the paper's own transformation makes
possible: a ``pred`` fragment *leaks the branch direction as a boolean on
the wire*, so an adversary can key every observation of a later ILP by the
sequence of predicate outcomes seen on the same activation — the **path
signature** — and attack each subgroup separately.

The result (see ``benchmarks/bench_attack_recovery.py`` and
``tests/test_pathsplit.py``) is a genuine strengthening of the paper's
adversary: multi-path ILPs that resist the flat attack fall once their
per-path closed forms are polynomial.  Fully hidden control flow (whole
constructs moved to ``Hf``) remains immune — no predicate crosses the wire
for those, which quantifies the value of the paper's control-flow hiding
over predicate hiding alone.
"""

from repro.attack.driver import AttackOutcome, attack_ilp
from repro.attack.trace import ILPTrace, _is_numeric_tuple, _numify
from repro.core.hidden import FragmentKind


def pred_labels(split_program):
    """fn_name -> set of labels whose fragments are leaked predicates."""
    out = {}
    for name, split in split_program.splits.items():
        labels = {
            label
            for label, frag in split.fragments.items()
            if frag.kind == FragmentKind.PRED
        }
        if labels:
            out[name] = labels
    return out


def collect_path_traces(transcript, targets, preds_by_fn):
    """Like :func:`repro.attack.trace.collect_traces` but keyed by path
    signature: ``{(fn, label): {signature: ILPTrace}}`` where the signature
    is the tuple of (pred label, outcome) pairs observed on the activation
    before the target call."""
    wanted = set(targets)
    traces = {t: {} for t in wanted}
    state = {}  # hid -> (slots dict, path list)
    for event in transcript.events:
        if event.kind == "open":
            if event.hid is None:
                continue  # class-instance registration, not an activation
            state[event.result] = ({}, [])
        elif event.kind == "close":
            state.pop(event.hid, None)
        elif event.kind == "call":
            slots, path = state.setdefault(event.hid, ({}, []))
            key = (event.fn_name, event.label)
            if key in wanted and _is_numeric_tuple(event.sent):
                result = event.result
                if isinstance(result, bool):
                    result = int(result)
                if isinstance(result, (int, float)):
                    signature = tuple(path)
                    bucket = traces[key].setdefault(
                        signature, ILPTrace(event.fn_name, event.label)
                    )
                    features = dict(slots)
                    for i, value in enumerate(event.sent):
                        features["L%s[%d]" % (event.label, i)] = _numify(value)
                    bucket.add(features, result)
            for i, value in enumerate(event.sent):
                if isinstance(value, (int, float)):
                    slots["L%s[%d]" % (event.label, i)] = _numify(value)
            if event.label in preds_by_fn.get(event.fn_name, ()):
                path.append((event.label, bool(event.result)))
    return traces


class PathAwareOutcome:
    """Result of a path-aware attack on one leaking label."""

    def __init__(self, fn_name, label, per_path, min_samples):
        self.fn_name = fn_name
        self.label = label
        self.per_path = per_path  # signature -> AttackOutcome
        self.min_samples = min_samples

    @property
    def assessed(self):
        return {
            sig: o
            for sig, o in self.per_path.items()
            if len(o.trace) >= self.min_samples
        }

    @property
    def broken(self):
        """Every sufficiently observed path subgroup was recovered (and at
        least one subgroup was)."""
        assessed = self.assessed
        return bool(assessed) and all(o.broken for o in assessed.values())

    @property
    def partially_broken(self):
        """At least one path subgroup was recovered — the adversary now
        owns the hidden computation along that path."""
        return any(o.broken for o in self.assessed.values())

    @property
    def paths_observed(self):
        return len(self.per_path)

    def __repr__(self):
        flag = "BROKEN" if self.broken else "resisted"
        return "<PathAwareOutcome %s#%s %s across %d paths>" % (
            self.fn_name,
            self.label,
            flag,
            self.paths_observed,
        )


def attack_with_path_split(split_program, runs, entry="main", min_samples=8,
                           max_poly_degree=3, max_rational_degree=2):
    """Run the program, partition each ILP's observations by path
    signature, and attack every subgroup.

    Returns ``{(fn_name, label): PathAwareOutcome}``.
    """
    from repro.attack.driver import leaking_labels
    from repro.runtime.splitrun import run_split

    targets = leaking_labels(split_program)
    preds = pred_labels(split_program)
    merged = {t: {} for t in targets}
    for args in runs:
        result = run_split(split_program, entry=entry, args=args)
        collected = collect_path_traces(result.channel.transcript, targets, preds)
        for key, by_sig in collected.items():
            for sig, trace in by_sig.items():
                bucket = merged[key].setdefault(
                    sig, ILPTrace(trace.fn_name, trace.label)
                )
                for features, value in trace.rows:
                    bucket.add(features, value)

    outcomes = {}
    for key, by_sig in merged.items():
        if not by_sig:
            continue
        per_path = {
            sig: attack_ilp(
                trace,
                max_poly_degree=max_poly_degree,
                max_rational_degree=max_rational_degree,
            )
            for sig, trace in by_sig.items()
        }
        outcomes[key] = PathAwareOutcome(key[0], key[1], per_path, min_samples)
    return outcomes
