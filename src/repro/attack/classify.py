"""Empirical complexity classification.

The static estimator (Fig. 3) produces a conservative lower bound on each
ILP's arithmetic complexity.  This module provides the dynamic
counterpart: classify an ILP by which recovery technique actually fits its
observations — the adversary's own view of the lattice.  Comparing the two
validates the estimator (an ILP statically labelled Linear must fall to
linear regression on single-path data; an Arbitrary one must resist).

Classes mirror the static lattice: ``Constant``, ``Linear``,
``Polynomial`` (with the recovered degree), ``Rational``, and
``Arbitrary`` for traces that resist everything — with the caveat the
paper makes in Section 3: samples that mix control-flow paths can push a
per-path-simple function into the resistant bucket.
"""

from repro.attack.linear import DEFAULT_TOL, fit_linear
from repro.attack.polynomial import fit_polynomial
from repro.attack.rational import fit_rational
from repro.security.lattice import CType


class EmpiricalClass:
    """Observed complexity class of one ILP trace."""

    def __init__(self, ctype, degree=None, fit=None):
        self.type = ctype
        self.degree = degree
        self.fit = fit

    def __repr__(self):
        if self.degree is not None:
            return "<Empirical %s deg=%d>" % (self.type, self.degree)
        return "<Empirical %s>" % self.type


def _is_constant(trace, tol=DEFAULT_TOL):
    values = [row[1] for row in trace.rows]
    if not values:
        return False
    first = values[0]
    scale = max(abs(first), 1.0)
    return all(abs(v - first) / scale <= tol for v in values)


def classify_trace(trace, max_poly_degree=4, max_rational_degree=2, tol=DEFAULT_TOL):
    """Fit models of increasing power; the first that generalises names the
    class.  Returns an :class:`EmpiricalClass`."""
    if len(trace) >= 2 and _is_constant(trace, tol):
        return EmpiricalClass(CType.CONSTANT, degree=0)
    fit = fit_linear(trace, tol=tol)
    if fit.success:
        return EmpiricalClass(CType.LINEAR, degree=1, fit=fit)
    for degree in range(2, max_poly_degree + 1):
        fit = fit_polynomial(trace, degree=degree, tol=tol)
        if fit.success:
            return EmpiricalClass(CType.POLYNOMIAL, degree=degree, fit=fit)
    for degree in range(1, max_rational_degree + 1):
        fit = fit_rational(trace, degree=degree, tol=tol)
        if fit.success:
            return EmpiricalClass(CType.RATIONAL, degree=degree, fit=fit)
    return EmpiricalClass(CType.ARBITRARY)


_RANK = {
    CType.CONSTANT: 0,
    CType.LINEAR: 1,
    CType.POLYNOMIAL: 2,
    CType.RATIONAL: 3,
    CType.ARBITRARY: 4,
}


def consistent_with_estimate(empirical, static_ac):
    """The estimator claims a *lower bound*: the empirical class must not
    fall below it (path mixing can push it above)."""
    return _RANK[empirical.type] >= _RANK[static_ac.type]


def validate_estimator(split_program, checker, runs, entry="main"):
    """Cross-check every ILP's static estimate against its empirical class
    over the given input tuples.  Returns a list of
    ``(fn_name, label, static_ac, empirical, consistent)``."""
    from repro.analysis.function import analyze_function
    from repro.attack.driver import leaking_labels
    from repro.attack.trace import collect_traces, merge_traces
    from repro.runtime.splitrun import run_split
    from repro.security.estimator import estimate_split_complexities

    static = {}
    for name, split in split_program.splits.items():
        analysis = analyze_function(
            split_program.original.function(name), checker
        )
        for c in estimate_split_complexities(split, analysis):
            static.setdefault((name, c.ilp.label), c.ac)

    targets = leaking_labels(split_program)
    merged = {}
    for args in runs:
        result = run_split(split_program, entry=entry, args=args)
        merge_traces(merged, collect_traces(result.channel.transcript, targets))

    report = []
    for key, trace in sorted(merged.items()):
        if not len(trace):
            continue
        empirical = classify_trace(trace)
        ac = static.get(key)
        if (
            ac is not None
            and ac.type != CType.CONSTANT
            and empirical.type == CType.CONSTANT
        ):
            # The observed values never varied over these inputs (e.g. a
            # predicate that always took the same branch): no evidence
            # either way — the lower bound is about the true function.
            continue
        ok = ac is None or consistent_with_estimate(empirical, ac)
        report.append((key[0], key[1], ac, empirical, ok))
    return report
