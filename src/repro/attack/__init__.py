"""Adversary simulation.

Section 3 of the paper argues that breaking an ILP amounts to recovering
the hidden function relating observable inputs to the leaked value, and
names the applicable techniques per arithmetic complexity class: linear
regression for Linear, polynomial interpolation for Polynomial, rational
interpolation for Rational — with no automatic method for Arbitrary, and
path explosion once control flow is hidden.

This package makes that argument executable: it collects ILP observation
traces from channel transcripts and attempts recovery with each technique,
reporting success, the number of samples consumed, and residuals.
"""

from repro.attack.trace import ILPTrace, collect_traces
from repro.attack.linear import fit_linear
from repro.attack.polynomial import fit_polynomial
from repro.attack.rational import fit_rational
from repro.attack.driver import AttackOutcome, attack_ilp, attack_split_program

__all__ = [
    "AttackOutcome",
    "ILPTrace",
    "attack_ilp",
    "attack_split_program",
    "collect_traces",
    "fit_linear",
    "fit_polynomial",
    "fit_rational",
]
