"""The full attack loop.

Mirrors the adversary of Section 3 ("Practical Limitations of Automated
Recovery"): they do not know the complexity of the hidden code, so every
technique is tried in order of increasing power — linear regression, then
polynomial interpolation of rising degree, then rational interpolation —
until one generalises.  ILPs whose hidden computation is Arbitrary (or
whose path structure partitions the samples) defeat all of them.
"""

from repro.attack.linear import fit_linear
from repro.attack.polynomial import fit_polynomial
from repro.attack.rational import fit_rational
from repro.attack.trace import collect_traces, merge_traces
from repro.runtime.splitrun import run_split


class AttackOutcome:
    """Result of attacking one leaking label."""

    def __init__(self, fn_name, label, trace, attempts):
        self.fn_name = fn_name
        self.label = label
        self.trace = trace
        self.attempts = list(attempts)

    @property
    def broken(self):
        return any(a.success for a in self.attempts)

    @property
    def winning(self):
        for a in self.attempts:
            if a.success:
                return a
        return None

    @property
    def samples_needed(self):
        win = self.winning
        return win.samples_used if win is not None else None

    def __repr__(self):
        if self.broken:
            win = self.winning
            return "<AttackOutcome %s#%s BROKEN by %s with %d samples>" % (
                self.fn_name,
                self.label,
                win.technique,
                win.samples_used,
            )
        return "<AttackOutcome %s#%s resisted %d techniques (%d samples)>" % (
            self.fn_name,
            self.label,
            len(self.attempts),
            len(self.trace),
        )


def attack_ilp(trace, max_poly_degree=3, max_rational_degree=2):
    """Try every recovery technique on one trace."""
    attempts = [fit_linear(trace)]
    if not attempts[-1].success:
        for degree in range(2, max_poly_degree + 1):
            attempts.append(fit_polynomial(trace, degree=degree))
            if attempts[-1].success:
                break
    if not any(a.success for a in attempts):
        for degree in range(1, max_rational_degree + 1):
            attempts.append(fit_rational(trace, degree=degree))
            if attempts[-1].success:
                break
    return AttackOutcome(trace.fn_name, trace.label, trace, attempts)


def leaking_labels(split_program):
    """The ``(fn_name, label)`` targets worth attacking: fragments whose
    return value feeds open computation (the ILPs)."""
    targets = set()
    for name, split in split_program.splits.items():
        for ilp in split.ilps:
            targets.add((name, ilp.label))
    return sorted(targets)


def attack_split_program(split_program, runs, entry="main",
                         max_poly_degree=3, max_rational_degree=2):
    """Run the split program on every argument tuple in ``runs``, pool the
    transcripts, and attack every leaking label.

    Returns ``{(fn_name, label): AttackOutcome}``.
    """
    targets = leaking_labels(split_program)
    merged = {t: None for t in targets}
    for args in runs:
        result = run_split(split_program, entry=entry, args=args)
        merge_traces(merged, collect_traces(result.channel.transcript, targets))
    outcomes = {}
    for key, trace in merged.items():
        if trace is None or len(trace) == 0:
            continue
        outcomes[key] = attack_ilp(
            trace,
            max_poly_degree=max_poly_degree,
            max_rational_degree=max_rational_degree,
        )
    return outcomes
