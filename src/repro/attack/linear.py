"""Linear recovery: least-squares fit of ``y = c0 + sum(ci * xi)``.

The technique the paper names for ILPs of Linear arithmetic complexity
(reference [12], Montgomery's *Introduction to Linear Regression
Analysis*).  Success requires the fitted model to *generalise*: it is
validated on held-out observations, not just fitted.
"""

import numpy as np

#: relative tolerance for declaring a prediction correct
DEFAULT_TOL = 1e-6


class FitResult:
    """Outcome of one model-fitting attempt."""

    def __init__(self, technique, success, coeffs=None, residual=float("inf"),
                 samples_used=0, detail=""):
        self.technique = technique
        self.success = success
        self.coeffs = coeffs
        self.residual = residual
        self.samples_used = samples_used
        self.detail = detail

    def __repr__(self):
        flag = "ok" if self.success else "FAIL"
        return "<FitResult %s %s residual=%.3g samples=%d>" % (
            self.technique,
            flag,
            self.residual,
            self.samples_used,
        )


def _max_rel_error(predicted, actual):
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    scale = np.maximum(np.abs(actual), 1.0)
    return float(np.max(np.abs(predicted - actual) / scale)) if len(actual) else 0.0


def distinct_rows(design):
    """Number of distinct observation points in a design matrix."""
    return len({tuple(row) for row in np.asarray(design, dtype=float).tolist()})


def fit_design_matrix(technique, design, y, build_row, n_features, tol=DEFAULT_TOL):
    """Shared engine: find the smallest training prefix whose least-squares
    fit predicts *all* remaining samples within ``tol``.

    ``design`` is the full design matrix (rows built by ``build_row``).
    Returns a :class:`FitResult`; ``samples_used`` is the training prefix
    size that first generalised.

    Identifiability: a model with more coefficients than *distinct*
    observation points can reproduce anything it has seen without having
    recovered the function (it will not extrapolate), so such fits are
    refused rather than reported as recoveries.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(y, dtype=float)
    total = len(y)
    if total < 2:
        return FitResult(technique, False, detail="not enough samples")
    if distinct_rows(design) <= n_features:
        return FitResult(
            technique,
            False,
            detail="unidentifiable: %d distinct points for %d coefficients"
            % (distinct_rows(design), n_features),
        )
    start = min(n_features + 1, total)
    for k in range(start, total + 1):
        coeffs, _res, _rank, _sv = np.linalg.lstsq(design[:k], y[:k], rcond=None)
        predictions = design @ coeffs
        err = _max_rel_error(predictions, y)
        if err <= tol:
            return FitResult(technique, True, coeffs, err, samples_used=k)
    return FitResult(
        technique,
        False,
        residual=err,
        samples_used=total,
        detail="no generalising fit",
    )


def fit_linear(trace, tol=DEFAULT_TOL):
    """Attempt linear recovery of a trace; returns :class:`FitResult`."""
    xs, ys = trace.matrix()
    if not xs:
        return FitResult("linear", False, detail="empty trace")
    design = [[1.0] + [float(v) for v in row] for row in xs]
    return fit_design_matrix("linear", design, ys, None, len(xs[0]) + 1, tol=tol)
