"""Rational recovery: fit ``y = P(x) / Q(x)`` with polynomial ``P``, ``Q``.

The technique the paper names for Rational ILPs (reference [10], Grigoriev
/ Karpinski / Singer, *Computational Complexity of Sparse Rational
Interpolation*).  Linearised: ``P(x) - y*Q'(x) = y`` with ``Q = 1 + Q'``
(denominator normalised to constant term 1), solved by least squares, then
validated by evaluating the recovered rational on held-out samples.
"""

import numpy as np

from repro.attack.linear import DEFAULT_TOL, FitResult, distinct_rows
from repro.attack.polynomial import design_matrix, monomials


def fit_rational(trace, degree=2, tol=DEFAULT_TOL, max_features=400):
    """Attempt rational recovery with numerator/denominator degree
    ``degree``."""
    technique = "rational%d" % degree
    xs, ys = trace.matrix()
    if not xs:
        return FitResult(technique, False, detail="empty trace")
    num_rows, num_basis = design_matrix(xs, degree)
    den_rows_full, den_basis_full = design_matrix(xs, degree)
    # Drop the constant column of the denominator (normalised to 1).
    den_rows = [row[1:] for row in den_rows_full]
    den_basis = den_basis_full[1:]
    n_features = len(num_basis) + len(den_basis)
    if n_features > max_features:
        return FitResult(technique, False, detail="basis too large")

    y = np.asarray(ys, dtype=float)
    num = np.asarray(num_rows, dtype=float)
    den = np.asarray(den_rows, dtype=float) if den_basis else np.zeros((len(y), 0))
    design = np.hstack([num, -(den * y[:, None])]) if den_basis else num
    total = len(y)
    if total < 2:
        return FitResult(technique, False, detail="not enough samples")
    if distinct_rows(num) <= n_features:
        return FitResult(
            technique,
            False,
            detail="unidentifiable: too few distinct observation points",
        )

    err = float("inf")
    start = min(n_features + 1, total)
    for k in range(start, total + 1):
        coeffs, _res, _rank, _sv = np.linalg.lstsq(design[:k], y[:k], rcond=None)
        p = num @ coeffs[: len(num_basis)]
        q = 1.0 + (den @ coeffs[len(num_basis):] if den_basis else 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            predictions = np.where(np.abs(q) > 1e-12, p / q, np.inf)
        scale = np.maximum(np.abs(y), 1.0)
        err = float(np.max(np.abs(predictions - y) / scale)) if total else 0.0
        if np.isfinite(err) and err <= tol:
            return FitResult(technique, True, coeffs, err, samples_used=k)
    if not np.isfinite(err):
        err = float("inf")
    return FitResult(technique, False, residual=err, samples_used=total,
                     detail="no generalising fit")
