"""Polynomial recovery: multivariate interpolation up to a total degree.

The technique the paper names for Polynomial ILPs (reference [17],
Zippel's *Interpolating Polynomials From Their Values*).  We realise it as
least squares over the monomial basis, with the same generalisation
criterion as the linear attack; dense interpolation and LSQ coincide when
enough samples are available.
"""

from itertools import combinations_with_replacement

from repro.attack.linear import DEFAULT_TOL, FitResult, fit_design_matrix


def monomials(n_vars, degree):
    """All exponent tuples of total degree <= ``degree`` over ``n_vars``
    variables, constant term first."""
    out = []
    for d in range(degree + 1):
        for combo in combinations_with_replacement(range(n_vars), d):
            exponents = [0] * n_vars
            for idx in combo:
                exponents[idx] += 1
            out.append(tuple(exponents))
    return out


def _monomial_value(row, exponents):
    value = 1.0
    for x, e in zip(row, exponents):
        if e:
            value *= float(x) ** e
    return value


def design_matrix(xs, degree):
    if not xs:
        return [], []
    basis = monomials(len(xs[0]), degree)
    rows = [[_monomial_value(row, m) for m in basis] for row in xs]
    return rows, basis


def fit_polynomial(trace, degree=2, tol=DEFAULT_TOL, max_features=400):
    """Attempt polynomial recovery at total degree ``degree``."""
    xs, ys = trace.matrix()
    if not xs:
        return FitResult("poly%d" % degree, False, detail="empty trace")
    rows, basis = design_matrix(xs, degree)
    if len(basis) > max_features:
        return FitResult(
            "poly%d" % degree,
            False,
            detail="basis too large (%d monomials)" % len(basis),
        )
    return fit_design_matrix(
        "poly%d" % degree, rows, ys, None, len(basis), tol=tol
    )
