"""Building ILP observation traces from channel transcripts.

The adversary sees every message: values sent by the open component
(fragment calls), values returned by the hidden component, and callback
traffic.  Following the paper's threat model, they do not know how many
variables the hidden component maintains, so for every leaking call they
must relate the returned value to *all* values previously sent on the same
activation ("the adversary must assume that it is dependent upon all the
variables whose values are sent to the hidden component").

A feature slot is one position of one fragment's value array
(``"L<label>[<index>]"``).  For each observation of a target label we
snapshot the most recent value of every slot seen on that activation.
"""


class ILPTrace:
    """Observations of one leaking fragment label in one split function."""

    def __init__(self, fn_name, label):
        self.fn_name = fn_name
        self.label = label
        self.feature_names = []
        self._feature_index = {}
        self.rows = []  # list of (dict feature -> value, result)

    def add(self, features, result):
        for name in features:
            if name not in self._feature_index:
                self._feature_index[name] = len(self.feature_names)
                self.feature_names.append(name)
        self.rows.append((dict(features), result))

    def matrix(self):
        """(X, y) with one column per feature (missing values are 0, the
        value a fresh activation would hold)."""
        xs = []
        ys = []
        for features, result in self.rows:
            xs.append([features.get(name, 0) for name in self.feature_names])
            ys.append(result)
        return xs, ys

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "<ILPTrace %s#%s: %d samples, %d features>" % (
            self.fn_name,
            self.label,
            len(self.rows),
            len(self.feature_names),
        )


def collect_traces(transcript, targets):
    """Extract an :class:`ILPTrace` per target.

    ``targets``: iterable of ``(fn_name, label)`` to observe (the leaking
    labels, i.e. labels of ILP fragments).  Returns a dict keyed by that
    pair.
    """
    wanted = set(targets)
    traces = {t: ILPTrace(t[0], t[1]) for t in wanted}
    # per-activation latest value of every send slot
    state = {}
    for event in transcript.events:
        if event.kind == "open":
            if event.hid is None:
                continue  # class-instance registration, not an activation
            state[event.result] = {}
        elif event.kind == "close":
            state.pop(event.hid, None)
        elif event.kind == "call":
            slots = state.setdefault(event.hid, {})
            key = (event.fn_name, event.label)
            if key in wanted and _is_numeric_tuple(event.sent):
                result = event.result
                if isinstance(result, bool):
                    result = int(result)
                if isinstance(result, (int, float)):
                    features = dict(slots)
                    for i, value in enumerate(event.sent):
                        features["L%s[%d]" % (event.label, i)] = _numify(value)
                    traces[key].add(features, result)
            for i, value in enumerate(event.sent):
                if isinstance(value, (int, float)):
                    slots["L%s[%d]" % (event.label, i)] = _numify(value)
    return traces


def _numify(value):
    if isinstance(value, bool):
        return int(value)
    return value


def _is_numeric_tuple(values):
    return all(isinstance(v, (int, float)) for v in values)


def merge_traces(merged, collected):
    """Accumulate per-run trace dicts into ``merged`` (key -> ILPTrace)."""
    for key, trace in collected.items():
        if key not in merged or merged[key] is None:
            merged[key] = trace
        else:
            for features, value in trace.rows:
                merged[key].add(features, value)
    return merged
