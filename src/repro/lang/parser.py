"""Recursive-descent parser for the MiniJava-like language."""

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.lexer import TokenKind, tokenize

# Binary operator precedence, lowest binds loosest.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["+", "-"],
    ["*", "/", "%"],
]

_SCALAR_TYPE_KEYWORDS = {"int", "float", "bool"}


class Parser:
    """Parses token streams into :mod:`repro.lang.ast` trees."""

    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token utilities ----------------------------------------------------

    def _peek(self, offset=0):
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect_op(self, text):
        tok = self._peek()
        if not tok.is_op(text):
            raise ParseError("expected %r, found %r" % (text, tok.text), tok.line, tok.col)
        return self._advance()

    def _expect_keyword(self, text):
        tok = self._peek()
        if not tok.is_keyword(text):
            raise ParseError("expected %r, found %r" % (text, tok.text), tok.line, tok.col)
        return self._advance()

    def _expect_ident(self):
        tok = self._peek()
        if tok.kind != TokenKind.IDENT:
            raise ParseError("expected identifier, found %r" % tok.text, tok.line, tok.col)
        return self._advance()

    def _accept_op(self, text):
        if self._peek().is_op(text):
            self._advance()
            return True
        return False

    # -- program structure --------------------------------------------------

    def parse_program(self):
        globals_, classes, functions = [], [], []
        while self._peek().kind != TokenKind.EOF:
            tok = self._peek()
            if tok.is_keyword("global"):
                globals_.append(self._parse_global())
            elif tok.is_keyword("class"):
                classes.append(self._parse_class())
            elif tok.is_keyword("func"):
                functions.append(self._parse_function("func", owner=None))
            else:
                raise ParseError(
                    "expected 'global', 'class' or 'func', found %r" % tok.text,
                    tok.line,
                    tok.col,
                )
        return ast.Program(globals_, classes, functions)

    def _parse_global(self):
        tok = self._expect_keyword("global")
        var_type = self._parse_type()
        name = self._expect_ident().text
        init = None
        if self._accept_op("="):
            init = self.parse_expr()
        self._expect_op(";")
        return ast.GlobalDecl(var_type, name, init).at(tok.line, tok.col)

    def _parse_class(self):
        tok = self._expect_keyword("class")
        name = self._expect_ident().text
        self._expect_op("{")
        fields, methods = [], []
        while not self._peek().is_op("}"):
            member = self._peek()
            if member.is_keyword("field"):
                self._advance()
                field_type = self._parse_type()
                field_name = self._expect_ident().text
                self._expect_op(";")
                fields.append(
                    ast.FieldDecl(field_type, field_name).at(member.line, member.col)
                )
            elif member.is_keyword("method"):
                methods.append(self._parse_function("method", owner=name))
            else:
                raise ParseError(
                    "expected 'field' or 'method', found %r" % member.text,
                    member.line,
                    member.col,
                )
        self._expect_op("}")
        return ast.ClassDecl(name, fields, methods).at(tok.line, tok.col)

    def _parse_function(self, keyword, owner):
        tok = self._expect_keyword(keyword)
        ret_type = None
        if self._peek().is_keyword("void"):
            self._advance()
        else:
            ret_type = self._parse_type()
        name = self._expect_ident().text
        self._expect_op("(")
        params = []
        if not self._peek().is_op(")"):
            while True:
                p_type = self._parse_type()
                p_tok = self._expect_ident()
                params.append(ast.Param(p_type, p_tok.text).at(p_tok.line, p_tok.col))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        body = self._parse_block_body()
        return ast.Function(name, params, ret_type, body, owner=owner).at(tok.line, tok.col)

    def _parse_type(self):
        tok = self._peek()
        if tok.kind == TokenKind.KEYWORD and tok.text in _SCALAR_TYPE_KEYWORDS:
            self._advance()
            base = {
                "int": ast.IntType,
                "float": ast.FloatType,
                "bool": ast.BoolType,
            }[tok.text]()
        elif tok.kind == TokenKind.IDENT:
            self._advance()
            base = ast.ClassType(tok.text)
        else:
            raise ParseError("expected a type, found %r" % tok.text, tok.line, tok.col)
        base.at(tok.line, tok.col)
        if self._peek().is_op("[") and self._peek(1).is_op("]"):
            self._advance()
            self._advance()
            return ast.ArrayType(base).at(tok.line, tok.col)
        return base

    # -- statements ---------------------------------------------------------

    def _parse_block_body(self):
        self._expect_op("{")
        body = []
        while not self._peek().is_op("}"):
            body.append(self.parse_stmt())
        self._expect_op("}")
        return body

    def parse_stmt(self):
        tok = self._peek()
        if tok.kind == TokenKind.KEYWORD:
            if tok.text in _SCALAR_TYPE_KEYWORDS:
                stmt = self._parse_var_decl()
                self._expect_op(";")
                return stmt
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self._advance()
                value = None
                if not self._peek().is_op(";"):
                    value = self.parse_expr()
                self._expect_op(";")
                return ast.Return(value).at(tok.line, tok.col)
            if tok.text == "print":
                self._advance()
                self._expect_op("(")
                value = self.parse_expr()
                self._expect_op(")")
                self._expect_op(";")
                return ast.Print(value).at(tok.line, tok.col)
            if tok.text == "break":
                self._advance()
                self._expect_op(";")
                return ast.Break().at(tok.line, tok.col)
            if tok.text == "continue":
                self._advance()
                self._expect_op(";")
                return ast.Continue().at(tok.line, tok.col)
            raise ParseError("unexpected keyword %r" % tok.text, tok.line, tok.col)
        if tok.is_op("{"):
            body = self._parse_block_body()
            return ast.Block(body).at(tok.line, tok.col)
        if tok.kind == TokenKind.IDENT and self._looks_like_decl():
            stmt = self._parse_var_decl()
            self._expect_op(";")
            return stmt
        stmt = self._parse_assign_or_call()
        self._expect_op(";")
        return stmt

    def _looks_like_decl(self):
        """True when the upcoming IDENT starts a class-typed declaration."""
        if self._peek(1).kind == TokenKind.IDENT:
            return True  # Foo x
        return (
            self._peek(1).is_op("[")
            and self._peek(2).is_op("]")
            and self._peek(3).kind == TokenKind.IDENT
        )  # Foo[] x

    def _parse_var_decl(self):
        tok = self._peek()
        var_type = self._parse_type()
        name = self._expect_ident().text
        init = None
        if self._accept_op("="):
            init = self.parse_expr()
        return ast.VarDecl(var_type, name, init).at(tok.line, tok.col)

    def _parse_assign_or_call(self):
        tok = self._peek()
        expr = self.parse_expr()
        if self._accept_op("="):
            if not isinstance(expr, (ast.VarRef, ast.Index, ast.FieldAccess)):
                raise ParseError("invalid assignment target", tok.line, tok.col)
            value = self.parse_expr()
            return ast.Assign(expr, value).at(tok.line, tok.col)
        if not isinstance(expr, (ast.Call, ast.MethodCall)):
            raise ParseError("expression statement must be a call", tok.line, tok.col)
        return ast.CallStmt(expr).at(tok.line, tok.col)

    def _parse_if(self):
        tok = self._expect_keyword("if")
        self._expect_op("(")
        cond = self.parse_expr()
        self._expect_op(")")
        then_body = self._parse_block_body()
        else_body = []
        if self._peek().is_keyword("else"):
            self._advance()
            if self._peek().is_keyword("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block_body()
        return ast.If(cond, then_body, else_body).at(tok.line, tok.col)

    def _parse_while(self):
        tok = self._expect_keyword("while")
        self._expect_op("(")
        cond = self.parse_expr()
        self._expect_op(")")
        body = self._parse_block_body()
        return ast.While(cond, body).at(tok.line, tok.col)

    def _parse_for(self):
        tok = self._expect_keyword("for")
        self._expect_op("(")
        init = None
        if not self._peek().is_op(";"):
            init = self._parse_for_simple()
        self._expect_op(";")
        cond = None
        if not self._peek().is_op(";"):
            cond = self.parse_expr()
        self._expect_op(";")
        update = None
        if not self._peek().is_op(")"):
            update = self._parse_for_simple()
        self._expect_op(")")
        body = self._parse_block_body()
        return ast.For(init, cond, update, body).at(tok.line, tok.col)

    def _parse_for_simple(self):
        """A declaration or assignment without a trailing semicolon."""
        tok = self._peek()
        if tok.kind == TokenKind.KEYWORD and tok.text in _SCALAR_TYPE_KEYWORDS:
            return self._parse_var_decl()
        expr = self.parse_expr()
        self._expect_op("=")
        if not isinstance(expr, (ast.VarRef, ast.Index, ast.FieldAccess)):
            raise ParseError("invalid assignment target", tok.line, tok.col)
        value = self.parse_expr()
        return ast.Assign(expr, value).at(tok.line, tok.col)

    # -- expressions --------------------------------------------------------

    def parse_expr(self):
        return self._parse_binary(0)

    def _parse_binary(self, level):
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind == TokenKind.OP and tok.text in _PRECEDENCE[level]:
                self._advance()
                right = self._parse_binary(level + 1)
                left = ast.BinaryOp(tok.text, left, right).at(tok.line, tok.col)
            else:
                return left

    def _parse_unary(self):
        tok = self._peek()
        if tok.is_op("-") or tok.is_op("!"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(tok.text, operand).at(tok.line, tok.col)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_op("["):
                self._advance()
                index = self.parse_expr()
                self._expect_op("]")
                expr = ast.Index(expr, index).at(tok.line, tok.col)
            elif tok.is_op("."):
                self._advance()
                name = self._expect_ident().text
                if self._peek().is_op("("):
                    args = self._parse_args()
                    expr = ast.MethodCall(expr, name, args).at(tok.line, tok.col)
                else:
                    expr = ast.FieldAccess(expr, name).at(tok.line, tok.col)
            else:
                return expr

    def _parse_args(self):
        self._expect_op("(")
        args = []
        if not self._peek().is_op(")"):
            while True:
                args.append(self.parse_expr())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return args

    def _parse_primary(self):
        tok = self._peek()
        if tok.kind == TokenKind.INT:
            self._advance()
            return ast.IntLit(tok.value).at(tok.line, tok.col)
        if tok.kind == TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(tok.value).at(tok.line, tok.col)
        if tok.is_keyword("true") or tok.is_keyword("false"):
            self._advance()
            return ast.BoolLit(tok.text == "true").at(tok.line, tok.col)
        if tok.is_keyword("new"):
            self._advance()
            type_tok = self._peek()
            if type_tok.kind == TokenKind.KEYWORD and type_tok.text in _SCALAR_TYPE_KEYWORDS:
                elem = self._parse_scalar_type()
                self._expect_op("[")
                size = self.parse_expr()
                self._expect_op("]")
                return ast.NewArray(elem, size).at(tok.line, tok.col)
            name = self._expect_ident().text
            if self._peek().is_op("["):
                self._advance()
                size = self.parse_expr()
                self._expect_op("]")
                return ast.NewArray(ast.ClassType(name), size).at(tok.line, tok.col)
            self._expect_op("(")
            self._expect_op(")")
            return ast.NewObject(name).at(tok.line, tok.col)
        if tok.is_op("("):
            self._advance()
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if tok.kind == TokenKind.IDENT:
            self._advance()
            if self._peek().is_op("("):
                args = self._parse_args()
                return ast.Call(tok.text, args).at(tok.line, tok.col)
            return ast.VarRef(tok.text).at(tok.line, tok.col)
        raise ParseError("unexpected token %r" % tok.text, tok.line, tok.col)

    def _parse_scalar_type(self):
        tok = self._advance()
        return {
            "int": ast.IntType,
            "float": ast.FloatType,
            "bool": ast.BoolType,
        }[tok.text]().at(tok.line, tok.col)


def parse_program(source):
    """Parse a full program from source text."""
    parser = Parser(source)
    program = parser.parse_program()
    eof = parser._peek()
    if eof.kind != TokenKind.EOF:
        raise ParseError("trailing input %r" % eof.text, eof.line, eof.col)
    return program


def parse_expression(source):
    """Parse a single expression (testing/tooling convenience)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    eof = parser._peek()
    if eof.kind != TokenKind.EOF:
        raise ParseError("trailing input %r" % eof.text, eof.line, eof.col)
    return expr


def parse_statements(source):
    """Parse a bare statement list (used to deserialise hidden fragments)."""
    parser = Parser(source)
    body = []
    while parser._peek().kind != TokenKind.EOF:
        body.append(parser.parse_stmt())
    return body
