"""Concise programmatic AST construction.

Used by the splitting transformation (which synthesises the open and hidden
components) and by the synthetic workload generators.  Example::

    from repro.lang import builders as b

    fn = b.func("sum3", [("int", "x")], "int", [
        b.decl("int", "s", b.mul(b.var("x"), b.lit(3))),
        b.ret(b.var("s")),
    ])
"""

from repro.lang import ast

_SCALARS = {
    "int": ast.IntType,
    "float": ast.FloatType,
    "bool": ast.BoolType,
}


def ty(spec):
    """Build a type from a short spec: ``"int"``, ``"float[]"``, ``"Point"``."""
    if isinstance(spec, ast.Type) or spec is None:
        return spec
    if spec == "void":
        return None
    if spec.endswith("[]"):
        return ast.ArrayType(ty(spec[:-2]))
    if spec in _SCALARS:
        return _SCALARS[spec]()
    return ast.ClassType(spec)


def lit(value):
    """Literal from a Python value (bool before int: bool is an int subclass)."""
    if isinstance(value, bool):
        return ast.BoolLit(value)
    if isinstance(value, int):
        return ast.IntLit(value)
    if isinstance(value, float):
        return ast.FloatLit(value)
    raise TypeError("no literal for %r" % (value,))


def var(name):
    return ast.VarRef(name)


def _expr(value):
    """Coerce a Python value or AST node to an expression."""
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, str):
        return var(value)
    return lit(value)


def binop(op, left, right):
    return ast.BinaryOp(op, _expr(left), _expr(right))


def add(left, right):
    return binop("+", left, right)


def sub(left, right):
    return binop("-", left, right)


def mul(left, right):
    return binop("*", left, right)


def div(left, right):
    return binop("/", left, right)


def mod(left, right):
    return binop("%", left, right)


def lt(left, right):
    return binop("<", left, right)


def le(left, right):
    return binop("<=", left, right)


def gt(left, right):
    return binop(">", left, right)


def ge(left, right):
    return binop(">=", left, right)


def eq(left, right):
    return binop("==", left, right)


def ne(left, right):
    return binop("!=", left, right)


def and_(left, right):
    return binop("&&", left, right)


def or_(left, right):
    return binop("||", left, right)


def neg(operand):
    return ast.UnaryOp("-", _expr(operand))


def not_(operand):
    return ast.UnaryOp("!", _expr(operand))


def call(name, *args):
    return ast.Call(name, [_expr(a) for a in args])


def method_call(receiver, name, *args):
    return ast.MethodCall(_expr(receiver), name, [_expr(a) for a in args])


def index(base, idx):
    return ast.Index(_expr(base), _expr(idx))


def field(obj, name):
    return ast.FieldAccess(_expr(obj), name)


def new_array(elem, size):
    return ast.NewArray(ty(elem), _expr(size))


def new_object(class_name):
    return ast.NewObject(class_name)


def decl(type_spec, name, init=None):
    return ast.VarDecl(ty(type_spec), name, _expr(init) if init is not None else None)


def assign(target, value):
    if isinstance(target, str):
        target = var(target)
    return ast.Assign(target, _expr(value))


def if_(cond, then_body, else_body=None):
    return ast.If(_expr(cond), list(then_body), list(else_body or []))


def while_(cond, body):
    return ast.While(_expr(cond), list(body))


def for_(init, cond, update, body):
    return ast.For(init, _expr(cond) if cond is not None else None, update, list(body))


def ret(value=None):
    return ast.Return(_expr(value) if value is not None else None)


def break_():
    return ast.Break()


def continue_():
    return ast.Continue()


def call_stmt(name_or_expr, *args):
    if isinstance(name_or_expr, (ast.Call, ast.MethodCall)):
        return ast.CallStmt(name_or_expr)
    return ast.CallStmt(call(name_or_expr, *args))


def print_(value):
    return ast.Print(_expr(value))


def param(type_spec, name):
    return ast.Param(ty(type_spec), name)


def func(name, params, ret_type, body, owner=None):
    """Build a function; ``params`` is a list of ``(type_spec, name)`` pairs."""
    built = [param(t, n) for t, n in params]
    return ast.Function(name, built, ty(ret_type), list(body), owner=owner)


def field_decl(type_spec, name):
    return ast.FieldDecl(ty(type_spec), name)


def class_(name, fields, methods):
    """Build a class; ``fields`` is a list of ``(type_spec, name)`` pairs."""
    built_fields = [field_decl(t, n) for t, n in fields]
    for m in methods:
        m.owner = name
    return ast.ClassDecl(name, built_fields, list(methods))


def global_(type_spec, name, init=None):
    return ast.GlobalDecl(ty(type_spec), name, _expr(init) if init is not None else None)


def program(functions=(), classes=(), globals_=()):
    return ast.Program(list(globals_), list(classes), list(functions))
