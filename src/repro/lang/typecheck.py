"""Type checker and name resolver for the MiniJava-like language.

Beyond reporting errors, the checker records facts the analysis passes rely
on:

* every :class:`~repro.lang.ast.VarRef` gets its ``binding`` attribute set to
  ``"local"``, ``"field"`` or ``"global"``;
* :attr:`TypeChecker.expr_types` maps expression nodes to their types;
* :attr:`TypeChecker.local_types` maps each function to its local/parameter
  type environment.

One deliberate restriction: a variable name may be declared only once per
function (no shadowing across blocks).  This gives every scalar local a
single identity, which is what the paper's slicing and hiding transformations
assume ("the variables in f that are selected to be hidden variables").
"""

from repro.lang import ast
from repro.lang.errors import TypeError_

#: Builtin function signatures: name -> (param type ctors, return type ctor).
#: ``"num"`` accepts int or float and returns the promoted operand type.
BUILTIN_SIGNATURES = {
    "sqrt": (("num",), ast.FloatType),
    "exp": (("num",), ast.FloatType),
    "log": (("num",), ast.FloatType),
    "sin": (("num",), ast.FloatType),
    "cos": (("num",), ast.FloatType),
    "pow": (("num", "num"), ast.FloatType),
    "abs": (("num",), "same"),
    "min": (("num", "num"), "promote"),
    "max": (("num", "num"), "promote"),
    "floor": (("num",), ast.IntType),
    "len": (("array",), ast.IntType),
}

#: Operators the security analysis classifies as arithmetically "arbitrary".
ARBITRARY_BUILTINS = {"sqrt", "exp", "log", "sin", "cos", "pow", "floor"}


def types_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.ArrayType):
        return types_equal(a.elem, b.elem)
    if isinstance(a, ast.ClassType):
        return a.name == b.name
    return True


def is_numeric(t):
    return isinstance(t, (ast.IntType, ast.FloatType))


def is_assignable(dst, src):
    """True when a value of type ``src`` may be stored into ``dst``
    (exact match, or the implicit int -> float promotion)."""
    if types_equal(dst, src):
        return True
    return isinstance(dst, ast.FloatType) and isinstance(src, ast.IntType)


def promote(a, b):
    """Binary numeric promotion."""
    if isinstance(a, ast.FloatType) or isinstance(b, ast.FloatType):
        return ast.FloatType()
    return ast.IntType()


class _FunctionScope:
    """Per-function environment used while checking one function body."""

    def __init__(self, fn, class_decl):
        self.fn = fn
        self.class_decl = class_decl
        self.locals = {}
        for p in fn.params:
            if p.name in self.locals:
                raise TypeError_("duplicate parameter %r" % p.name, p.line, p.col)
            self.locals[p.name] = p.param_type


class TypeChecker:
    """Checks a whole program and records resolution facts."""

    def __init__(self, program):
        self.program = program
        self.expr_types = {}
        self.local_types = {}
        self.global_types = {g.name: g.var_type for g in program.globals}
        self.class_decls = {c.name: c for c in program.classes}
        self.functions = {}
        for fn in program.functions:
            if fn.name in self.functions:
                raise TypeError_("duplicate function %r" % fn.name, fn.line, fn.col)
            self.functions[fn.name] = fn
        self.methods = {}
        for cls in program.classes:
            for m in cls.methods:
                key = (cls.name, m.name)
                if key in self.methods:
                    raise TypeError_("duplicate method %r" % m.name, m.line, m.col)
                self.methods[key] = m

    def check(self):
        for g in self.program.globals:
            if g.init is not None:
                t = self._check_expr_no_scope(g.init)
                if not is_assignable(g.var_type, t):
                    raise TypeError_(
                        "cannot initialise global %r of type %s with %s" % (g.name, g.var_type, t),
                        g.line,
                        g.col,
                    )
        for fn in self.program.functions:
            self._check_function(fn, None)
        for cls in self.program.classes:
            seen_fields = set()
            for fld in cls.fields:
                if fld.name in seen_fields:
                    raise TypeError_("duplicate field %r" % fld.name, fld.line, fld.col)
                seen_fields.add(fld.name)
            for method in cls.methods:
                self._check_function(method, cls)
        return self

    # -- functions ----------------------------------------------------------

    def _check_function(self, fn, class_decl):
        scope = _FunctionScope(fn, class_decl)
        self._check_body(fn.body, scope, in_loop=False)
        self.local_types[fn] = dict(scope.locals)

    def _check_body(self, body, scope, in_loop):
        for stmt in body:
            self._check_stmt(stmt, scope, in_loop)

    def _check_stmt(self, stmt, scope, in_loop):
        if isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            target_t = self._check_lvalue(stmt.target, scope)
            value_t = self._check_expr(stmt.value, scope)
            if not is_assignable(target_t, value_t):
                raise TypeError_(
                    "cannot assign %s to %s" % (value_t, target_t), stmt.line, stmt.col
                )
        elif isinstance(stmt, ast.If):
            cond_t = self._check_expr(stmt.cond, scope)
            if not isinstance(cond_t, ast.BoolType):
                raise TypeError_("if condition must be bool, got %s" % cond_t, stmt.line, stmt.col)
            self._check_body(stmt.then_body, scope, in_loop)
            self._check_body(stmt.else_body, scope, in_loop)
        elif isinstance(stmt, ast.While):
            cond_t = self._check_expr(stmt.cond, scope)
            if not isinstance(cond_t, ast.BoolType):
                raise TypeError_("while condition must be bool, got %s" % cond_t, stmt.line, stmt.col)
            self._check_body(stmt.body, scope, in_loop=True)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_stmt(stmt.init, scope, in_loop)
            if stmt.cond is not None:
                cond_t = self._check_expr(stmt.cond, scope)
                if not isinstance(cond_t, ast.BoolType):
                    raise TypeError_("for condition must be bool, got %s" % cond_t, stmt.line, stmt.col)
            if stmt.update is not None:
                if isinstance(stmt.update, ast.VarDecl):
                    raise TypeError_("for update may not declare a variable", stmt.line, stmt.col)
                self._check_stmt(stmt.update, scope, in_loop)
            self._check_body(stmt.body, scope, in_loop=True)
        elif isinstance(stmt, ast.Return):
            if scope.fn.ret_type is None:
                if stmt.value is not None:
                    raise TypeError_("void function returns a value", stmt.line, stmt.col)
            else:
                if stmt.value is None:
                    raise TypeError_("non-void function returns nothing", stmt.line, stmt.col)
                t = self._check_expr(stmt.value, scope)
                if not is_assignable(scope.fn.ret_type, t):
                    raise TypeError_(
                        "return type mismatch: expected %s, got %s" % (scope.fn.ret_type, t),
                        stmt.line,
                        stmt.col,
                    )
        elif isinstance(stmt, ast.CallStmt):
            self._check_expr(stmt.call, scope, allow_void=True)
        elif isinstance(stmt, ast.Print):
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if not in_loop:
                raise TypeError_("break/continue outside a loop", stmt.line, stmt.col)
        elif isinstance(stmt, ast.Block):
            self._check_body(stmt.body, scope, in_loop)
        else:
            raise TypeError_("unknown statement %r" % stmt, stmt.line, stmt.col)

    def _check_var_decl(self, stmt, scope):
        if stmt.name in scope.locals:
            raise TypeError_(
                "variable %r declared more than once in function %r"
                % (stmt.name, scope.fn.name),
                stmt.line,
                stmt.col,
            )
        if isinstance(stmt.var_type, ast.ClassType) and stmt.var_type.name not in self.class_decls:
            raise TypeError_("unknown class %r" % stmt.var_type.name, stmt.line, stmt.col)
        scope.locals[stmt.name] = stmt.var_type
        if stmt.init is not None:
            t = self._check_expr(stmt.init, scope)
            if not is_assignable(stmt.var_type, t):
                raise TypeError_(
                    "cannot initialise %r of type %s with %s" % (stmt.name, stmt.var_type, t),
                    stmt.line,
                    stmt.col,
                )

    # -- expressions --------------------------------------------------------

    def _check_lvalue(self, expr, scope):
        if isinstance(expr, (ast.VarRef, ast.Index, ast.FieldAccess)):
            return self._check_expr(expr, scope)
        raise TypeError_("invalid assignment target", expr.line, expr.col)

    def _check_expr_no_scope(self, expr):
        """Check a global initialiser, which may only use literals."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return self._record(expr, self._literal_type(expr))
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.operand, (ast.IntLit, ast.FloatLit)):
            return self._record(expr, self._literal_type(expr.operand))
        raise TypeError_("global initialisers must be literals", expr.line, expr.col)

    def _literal_type(self, expr):
        if isinstance(expr, ast.IntLit):
            return ast.IntType()
        if isinstance(expr, ast.FloatLit):
            return ast.FloatType()
        return ast.BoolType()

    def _record(self, expr, t):
        self.expr_types[expr] = t
        return t

    def _check_expr(self, expr, scope, allow_void=False):
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return self._record(expr, self._literal_type(expr))
        if isinstance(expr, ast.VarRef):
            return self._record(expr, self._resolve_var(expr, scope))
        if isinstance(expr, ast.BinaryOp):
            return self._record(expr, self._check_binary(expr, scope))
        if isinstance(expr, ast.UnaryOp):
            t = self._check_expr(expr.operand, scope)
            if expr.op == "-":
                if not is_numeric(t):
                    raise TypeError_("unary '-' needs a number, got %s" % t, expr.line, expr.col)
                return self._record(expr, t)
            if expr.op == "!":
                if not isinstance(t, ast.BoolType):
                    raise TypeError_("'!' needs a bool, got %s" % t, expr.line, expr.col)
                return self._record(expr, ast.BoolType())
            raise TypeError_("unknown unary operator %r" % expr.op, expr.line, expr.col)
        if isinstance(expr, ast.Call):
            return self._record(expr, self._check_call(expr, scope, allow_void))
        if isinstance(expr, ast.MethodCall):
            return self._record(expr, self._check_method_call(expr, scope, allow_void))
        if isinstance(expr, ast.Index):
            base_t = self._check_expr(expr.base, scope)
            if not isinstance(base_t, ast.ArrayType):
                raise TypeError_("indexing a non-array %s" % base_t, expr.line, expr.col)
            index_t = self._check_expr(expr.index, scope)
            if not isinstance(index_t, ast.IntType):
                raise TypeError_("array index must be int, got %s" % index_t, expr.line, expr.col)
            return self._record(expr, base_t.elem)
        if isinstance(expr, ast.FieldAccess):
            obj_t = self._check_expr(expr.obj, scope)
            if not isinstance(obj_t, ast.ClassType):
                raise TypeError_("field access on non-object %s" % obj_t, expr.line, expr.col)
            cls = self.class_decls.get(obj_t.name)
            if cls is None:
                raise TypeError_("unknown class %r" % obj_t.name, expr.line, expr.col)
            for fld in cls.fields:
                if fld.name == expr.name:
                    return self._record(expr, fld.field_type)
            raise TypeError_(
                "class %r has no field %r" % (obj_t.name, expr.name), expr.line, expr.col
            )
        if isinstance(expr, ast.NewArray):
            size_t = self._check_expr(expr.size, scope)
            if not isinstance(size_t, ast.IntType):
                raise TypeError_("array size must be int, got %s" % size_t, expr.line, expr.col)
            return self._record(expr, ast.ArrayType(expr.elem_type))
        if isinstance(expr, ast.NewObject):
            if expr.class_name not in self.class_decls:
                raise TypeError_("unknown class %r" % expr.class_name, expr.line, expr.col)
            return self._record(expr, ast.ClassType(expr.class_name))
        raise TypeError_("unknown expression %r" % expr, expr.line, expr.col)

    def _resolve_var(self, expr, scope):
        if expr.name in scope.locals:
            expr.binding = "local"
            return scope.locals[expr.name]
        if scope.class_decl is not None:
            for fld in scope.class_decl.fields:
                if fld.name == expr.name:
                    expr.binding = "field"
                    return fld.field_type
        if expr.name in self.global_types:
            expr.binding = "global"
            return self.global_types[expr.name]
        raise TypeError_("undefined variable %r" % expr.name, expr.line, expr.col)

    def _check_binary(self, expr, scope):
        lt = self._check_expr(expr.left, scope)
        rt = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("+", "-", "*", "/"):
            if not (is_numeric(lt) and is_numeric(rt)):
                raise TypeError_("%r needs numbers, got %s and %s" % (op, lt, rt), expr.line, expr.col)
            return promote(lt, rt)
        if op == "%":
            if not (isinstance(lt, ast.IntType) and isinstance(rt, ast.IntType)):
                raise TypeError_("'%%' needs ints, got %s and %s" % (lt, rt), expr.line, expr.col)
            return ast.IntType()
        if op in ("<", "<=", ">", ">="):
            if not (is_numeric(lt) and is_numeric(rt)):
                raise TypeError_("%r needs numbers, got %s and %s" % (op, lt, rt), expr.line, expr.col)
            return ast.BoolType()
        if op in ("==", "!="):
            ok = (is_numeric(lt) and is_numeric(rt)) or (
                isinstance(lt, ast.BoolType) and isinstance(rt, ast.BoolType)
            )
            if not ok:
                raise TypeError_("%r cannot compare %s and %s" % (op, lt, rt), expr.line, expr.col)
            return ast.BoolType()
        if op in ("&&", "||"):
            if not (isinstance(lt, ast.BoolType) and isinstance(rt, ast.BoolType)):
                raise TypeError_("%r needs bools, got %s and %s" % (op, lt, rt), expr.line, expr.col)
            return ast.BoolType()
        raise TypeError_("unknown operator %r" % op, expr.line, expr.col)

    def _check_call(self, expr, scope, allow_void):
        if expr.name in BUILTIN_SIGNATURES:
            return self._check_builtin(expr, scope)
        fn = self.functions.get(expr.name)
        if fn is None and scope.class_decl is not None:
            fn = self.methods.get((scope.class_decl.name, expr.name))
        if fn is None:
            raise TypeError_("undefined function %r" % expr.name, expr.line, expr.col)
        self._check_args(expr, fn, scope)
        if fn.ret_type is None and not allow_void:
            raise TypeError_("void call used as a value", expr.line, expr.col)
        return fn.ret_type if fn.ret_type is not None else ast.IntType()

    def _check_method_call(self, expr, scope, allow_void):
        obj_t = self._check_expr(expr.receiver, scope)
        if not isinstance(obj_t, ast.ClassType):
            raise TypeError_("method call on non-object %s" % obj_t, expr.line, expr.col)
        fn = self.methods.get((obj_t.name, expr.name))
        if fn is None:
            raise TypeError_(
                "class %r has no method %r" % (obj_t.name, expr.name), expr.line, expr.col
            )
        self._check_args(expr, fn, scope)
        if fn.ret_type is None and not allow_void:
            raise TypeError_("void call used as a value", expr.line, expr.col)
        return fn.ret_type if fn.ret_type is not None else ast.IntType()

    def _check_args(self, expr, fn, scope):
        if len(expr.args) != len(fn.params):
            raise TypeError_(
                "%r expects %d arguments, got %d" % (fn.name, len(fn.params), len(expr.args)),
                expr.line,
                expr.col,
            )
        for arg, param in zip(expr.args, fn.params):
            t = self._check_expr(arg, scope)
            if not is_assignable(param.param_type, t):
                raise TypeError_(
                    "argument %r: expected %s, got %s" % (param.name, param.param_type, t),
                    expr.line,
                    expr.col,
                )

    def _check_builtin(self, expr, scope):
        param_spec, ret_spec = BUILTIN_SIGNATURES[expr.name]
        if len(expr.args) != len(param_spec):
            raise TypeError_(
                "builtin %r expects %d arguments, got %d"
                % (expr.name, len(param_spec), len(expr.args)),
                expr.line,
                expr.col,
            )
        arg_types = []
        for arg, spec in zip(expr.args, param_spec):
            t = self._check_expr(arg, scope)
            if spec == "num" and not is_numeric(t):
                raise TypeError_(
                    "builtin %r needs a number, got %s" % (expr.name, t), expr.line, expr.col
                )
            if spec == "array" and not isinstance(t, ast.ArrayType):
                raise TypeError_(
                    "builtin %r needs an array, got %s" % (expr.name, t), expr.line, expr.col
                )
            arg_types.append(t)
        if ret_spec == "same":
            return arg_types[0]
        if ret_spec == "promote":
            return promote(arg_types[0], arg_types[1])
        return ret_spec()


def check_program(program):
    """Type-check ``program``; returns the populated :class:`TypeChecker`."""
    return TypeChecker(program).check()
