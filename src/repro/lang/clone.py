"""Deep copying of AST subtrees.

The splitter must leave the original program untouched (the security
estimator runs on it), so every statement or expression placed into an open
or hidden component is cloned.  Fresh ``uid``s are assigned; ``binding``
annotations on variable references are preserved.
"""

from repro.lang import ast


def clone_expr(expr):
    if expr is None:
        return None
    if isinstance(expr, ast.IntLit):
        return ast.IntLit(expr.value).at(expr.line, expr.col)
    if isinstance(expr, ast.FloatLit):
        return ast.FloatLit(expr.value).at(expr.line, expr.col)
    if isinstance(expr, ast.BoolLit):
        return ast.BoolLit(expr.value).at(expr.line, expr.col)
    if isinstance(expr, ast.VarRef):
        return ast.VarRef(expr.name, expr.binding).at(expr.line, expr.col)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, clone_expr(expr.left), clone_expr(expr.right)).at(
            expr.line, expr.col
        )
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, clone_expr(expr.operand)).at(expr.line, expr.col)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.name, [clone_expr(a) for a in expr.args]).at(
            expr.line, expr.col
        )
    if isinstance(expr, ast.MethodCall):
        return ast.MethodCall(
            clone_expr(expr.receiver), expr.name, [clone_expr(a) for a in expr.args]
        ).at(expr.line, expr.col)
    if isinstance(expr, ast.Index):
        return ast.Index(clone_expr(expr.base), clone_expr(expr.index)).at(
            expr.line, expr.col
        )
    if isinstance(expr, ast.FieldAccess):
        return ast.FieldAccess(clone_expr(expr.obj), expr.name).at(expr.line, expr.col)
    if isinstance(expr, ast.NewArray):
        return ast.NewArray(clone_type(expr.elem_type), clone_expr(expr.size)).at(
            expr.line, expr.col
        )
    if isinstance(expr, ast.NewObject):
        return ast.NewObject(expr.class_name).at(expr.line, expr.col)
    raise TypeError("cannot clone %r" % (expr,))


def clone_type(t):
    if t is None:
        return None
    if isinstance(t, ast.IntType):
        return ast.IntType()
    if isinstance(t, ast.FloatType):
        return ast.FloatType()
    if isinstance(t, ast.BoolType):
        return ast.BoolType()
    if isinstance(t, ast.ArrayType):
        return ast.ArrayType(clone_type(t.elem))
    if isinstance(t, ast.ClassType):
        return ast.ClassType(t.name)
    raise TypeError("cannot clone type %r" % (t,))


def clone_stmt(stmt):
    if isinstance(stmt, ast.VarDecl):
        return ast.VarDecl(clone_type(stmt.var_type), stmt.name, clone_expr(stmt.init)).at(
            stmt.line, stmt.col
        )
    if isinstance(stmt, ast.Assign):
        return ast.Assign(clone_expr(stmt.target), clone_expr(stmt.value)).at(
            stmt.line, stmt.col
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            clone_expr(stmt.cond), clone_body(stmt.then_body), clone_body(stmt.else_body)
        ).at(stmt.line, stmt.col)
    if isinstance(stmt, ast.While):
        return ast.While(clone_expr(stmt.cond), clone_body(stmt.body)).at(
            stmt.line, stmt.col
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            clone_stmt(stmt.init) if stmt.init is not None else None,
            clone_expr(stmt.cond),
            clone_stmt(stmt.update) if stmt.update is not None else None,
            clone_body(stmt.body),
        ).at(stmt.line, stmt.col)
    if isinstance(stmt, ast.Return):
        return ast.Return(clone_expr(stmt.value)).at(stmt.line, stmt.col)
    if isinstance(stmt, ast.CallStmt):
        return ast.CallStmt(clone_expr(stmt.call)).at(stmt.line, stmt.col)
    if isinstance(stmt, ast.Print):
        return ast.Print(clone_expr(stmt.value)).at(stmt.line, stmt.col)
    if isinstance(stmt, ast.Break):
        return ast.Break().at(stmt.line, stmt.col)
    if isinstance(stmt, ast.Continue):
        return ast.Continue().at(stmt.line, stmt.col)
    if isinstance(stmt, ast.Block):
        return ast.Block(clone_body(stmt.body)).at(stmt.line, stmt.col)
    raise TypeError("cannot clone %r" % (stmt,))


def clone_body(body):
    return [clone_stmt(s) for s in body]


def clone_function(fn):
    params = [
        ast.Param(clone_type(p.param_type), p.name).at(p.line, p.col) for p in fn.params
    ]
    return ast.Function(
        fn.name, params, clone_type(fn.ret_type), clone_body(fn.body), owner=fn.owner
    ).at(fn.line, fn.col)


def clone_program(program):
    globals_ = [
        ast.GlobalDecl(clone_type(g.var_type), g.name, clone_expr(g.init)).at(g.line, g.col)
        for g in program.globals
    ]
    classes = []
    for cls in program.classes:
        fields = [
            ast.FieldDecl(clone_type(f.field_type), f.name).at(f.line, f.col)
            for f in cls.fields
        ]
        methods = [clone_function(m) for m in cls.methods]
        classes.append(ast.ClassDecl(cls.name, fields, methods).at(cls.line, cls.col))
    functions = [clone_function(fn) for fn in program.functions]
    return ast.Program(globals_, classes, functions)
