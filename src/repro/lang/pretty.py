"""Pretty printer (unparser) for the MiniJava-like language.

``parse_program(pretty(p))`` is structurally equal to ``p``; the property
tests rely on this round trip.
"""

from repro.lang import ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_UNARY_PRECEDENCE = 7


def pretty_expr(expr, parent_prec=0):
    """Render an expression, parenthesising only where required."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        return repr(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.BinaryOp):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, prec)
        # Right operand of a left-associative operator needs parens when it
        # is at the same precedence level.
        right = pretty_expr(expr.right, prec + 1)
        text = "%s %s %s" % (left, expr.op, right)
        if prec < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, ast.UnaryOp):
        text = "%s%s" % (expr.op, pretty_expr(expr.operand, _UNARY_PRECEDENCE))
        if _UNARY_PRECEDENCE < parent_prec:
            return "(%s)" % text
        return text
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return "%s(%s)" % (expr.name, args)
    if isinstance(expr, ast.MethodCall):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return "%s.%s(%s)" % (pretty_expr(expr.receiver, _UNARY_PRECEDENCE + 1), expr.name, args)
    if isinstance(expr, ast.Index):
        return "%s[%s]" % (pretty_expr(expr.base, _UNARY_PRECEDENCE + 1), pretty_expr(expr.index))
    if isinstance(expr, ast.FieldAccess):
        return "%s.%s" % (pretty_expr(expr.obj, _UNARY_PRECEDENCE + 1), expr.name)
    if isinstance(expr, ast.NewArray):
        return "new %s[%s]" % (_type_text(expr.elem_type), pretty_expr(expr.size))
    if isinstance(expr, ast.NewObject):
        return "new %s()" % expr.class_name
    raise TypeError("cannot pretty-print %r" % (expr,))


def _type_text(t):
    if t is None:
        return "void"
    return str(t)


def pretty_stmt(stmt, indent=0):
    """Render a statement (with trailing newline) at ``indent`` levels."""
    pad = "    " * indent
    if isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            return "%s%s %s = %s;\n" % (pad, _type_text(stmt.var_type), stmt.name, pretty_expr(stmt.init))
        return "%s%s %s;\n" % (pad, _type_text(stmt.var_type), stmt.name)
    if isinstance(stmt, ast.Assign):
        return "%s%s = %s;\n" % (pad, pretty_expr(stmt.target), pretty_expr(stmt.value))
    if isinstance(stmt, ast.If):
        out = "%sif (%s) {\n" % (pad, pretty_expr(stmt.cond))
        out += _body_text(stmt.then_body, indent + 1)
        if stmt.else_body:
            out += "%s} else {\n" % pad
            out += _body_text(stmt.else_body, indent + 1)
        out += "%s}\n" % pad
        return out
    if isinstance(stmt, ast.While):
        out = "%swhile (%s) {\n" % (pad, pretty_expr(stmt.cond))
        out += _body_text(stmt.body, indent + 1)
        out += "%s}\n" % pad
        return out
    if isinstance(stmt, ast.For):
        init = _simple_text(stmt.init)
        cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
        update = _simple_text(stmt.update)
        out = "%sfor (%s; %s; %s) {\n" % (pad, init, cond, update)
        out += _body_text(stmt.body, indent + 1)
        out += "%s}\n" % pad
        return out
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            return "%sreturn %s;\n" % (pad, pretty_expr(stmt.value))
        return "%sreturn;\n" % pad
    if isinstance(stmt, ast.CallStmt):
        return "%s%s;\n" % (pad, pretty_expr(stmt.call))
    if isinstance(stmt, ast.Print):
        return "%sprint(%s);\n" % (pad, pretty_expr(stmt.value))
    if isinstance(stmt, ast.Break):
        return "%sbreak;\n" % pad
    if isinstance(stmt, ast.Continue):
        return "%scontinue;\n" % pad
    if isinstance(stmt, ast.Block):
        return "%s{\n%s%s}\n" % (pad, _body_text(stmt.body, indent + 1), pad)
    raise TypeError("cannot pretty-print %r" % (stmt,))


def _simple_text(stmt):
    """Render a for-header statement without the trailing ';' / newline."""
    if stmt is None:
        return ""
    text = pretty_stmt(stmt, 0)
    return text.strip().rstrip(";")


def _body_text(body, indent):
    return "".join(pretty_stmt(s, indent) for s in body)


def pretty_function(fn, indent=0):
    pad = "    " * indent
    keyword = "method" if fn.is_method else "func"
    params = ", ".join("%s %s" % (_type_text(p.param_type), p.name) for p in fn.params)
    out = "%s%s %s %s(%s) {\n" % (pad, keyword, _type_text(fn.ret_type), fn.name, params)
    out += _body_text(fn.body, indent + 1)
    out += "%s}\n" % pad
    return out


def pretty(program):
    """Render a whole program."""
    parts = []
    for g in program.globals:
        if g.init is not None:
            parts.append("global %s %s = %s;\n" % (_type_text(g.var_type), g.name, pretty_expr(g.init)))
        else:
            parts.append("global %s %s;\n" % (_type_text(g.var_type), g.name))
    for cls in program.classes:
        parts.append("class %s {\n" % cls.name)
        for fld in cls.fields:
            parts.append("    field %s %s;\n" % (_type_text(fld.field_type), fld.name))
        for method in cls.methods:
            parts.append(pretty_function(method, 1))
        parts.append("}\n")
    for fn in program.functions:
        parts.append(pretty_function(fn))
    return "".join(parts)
