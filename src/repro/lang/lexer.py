"""Hand-written lexer for the MiniJava-like language."""

from repro.lang.errors import LexError

KEYWORDS = {
    "class",
    "field",
    "method",
    "func",
    "global",
    "int",
    "float",
    "bool",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "print",
    "break",
    "continue",
    "true",
    "false",
    "new",
}

# Multi-character operators must be listed before their prefixes.
OPERATORS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
]


class TokenKind:
    IDENT = "IDENT"
    INT = "INT"
    FLOAT = "FLOAT"
    KEYWORD = "KEYWORD"
    OP = "OP"
    EOF = "EOF"


class Token:
    """A single lexed token with its source position."""

    __slots__ = ("kind", "text", "value", "line", "col")

    def __init__(self, kind, text, value, line, col):
        self.kind = kind
        self.text = text
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.text, self.line, self.col)

    def is_op(self, text):
        return self.kind == TokenKind.OP and self.text == text

    def is_keyword(self, text):
        return self.kind == TokenKind.KEYWORD and self.text == text


def _is_digit(ch):
    """ASCII digits only — ``str.isdigit`` accepts unicode digit-likes
    (e.g. superscripts) that ``int()`` rejects."""
    return "0" <= ch <= "9"


class Lexer:
    """Converts source text into a list of tokens.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    """

    def __init__(self, source):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def tokens(self):
        out = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind == TokenKind.EOF:
                return out

    # -- internals ----------------------------------------------------------

    def _peek(self, offset=0):
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self):
        self._skip_trivia()
        line, col = self.line, self.col
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", None, line, col)
        ch = self._peek()
        if _is_digit(ch) or (ch == "." and _is_digit(self._peek(1))):
            return self._lex_number(line, col)
        if (ch.isascii() and ch.isalpha()) or ch == "_":
            return self._lex_word(line, col)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OP, op, None, line, col)
        raise LexError("unexpected character %r" % ch, line, col)

    def _lex_number(self, line, col):
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.source):
            ch = self._peek()
            if _is_digit(ch):
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp and _is_digit(self._peek(1)):
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                _is_digit(self._peek(1))
                or (self._peek(1) in "+-" and _is_digit(self._peek(2)))
            ):
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        text = self.source[start : self.pos]
        if seen_dot or seen_exp:
            return Token(TokenKind.FLOAT, text, float(text), line, col)
        return Token(TokenKind.INT, text, int(text), line, col)

    def _lex_word(self, line, col):
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isascii()
            and (self._peek().isalnum() or self._peek() == "_")
        ):
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token(TokenKind.KEYWORD, text, None, line, col)
        return Token(TokenKind.IDENT, text, text, line, col)


def tokenize(source):
    """Tokenize ``source`` into a list ending with an EOF token."""
    return Lexer(source).tokens()
