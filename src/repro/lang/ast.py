"""Abstract syntax tree for the MiniJava-like language.

Nodes are plain dataclasses with identity-based equality (``eq=False``) so
they can be used as dictionary keys by the analysis passes, which attach
facts to individual statements and expressions.  Structural comparison, used
by the parser/pretty-printer round-trip tests, is provided separately by
:func:`structurally_equal`.

Every node carries a unique ``uid`` and an optional source position.
"""

import itertools
from dataclasses import dataclass, field

_uid_counter = itertools.count(1)


def _next_uid():
    return next(_uid_counter)


@dataclass(eq=False)
class Node:
    """Base class for all AST nodes."""

    def __post_init__(self):
        self.uid = _next_uid()
        self.line = None
        self.col = None

    def at(self, line, col):
        """Attach a source position; returns ``self`` for chaining."""
        self.line = line
        self.col = col
        return self


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Type(Node):
    """Base class for type annotations."""


@dataclass(eq=False)
class IntType(Type):
    def __str__(self):
        return "int"


@dataclass(eq=False)
class FloatType(Type):
    def __str__(self):
        return "float"


@dataclass(eq=False)
class BoolType(Type):
    def __str__(self):
        return "bool"


@dataclass(eq=False)
class ArrayType(Type):
    elem: Type

    def __str__(self):
        return "%s[]" % self.elem


@dataclass(eq=False)
class ClassType(Type):
    name: str

    def __str__(self):
        return self.name


def is_scalar_type(t):
    """Scalar types are the only ones the paper allows to be hidden."""
    return isinstance(t, (IntType, FloatType, BoolType))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr(Node):
    """Base class for expressions."""


@dataclass(eq=False)
class IntLit(Expr):
    value: int


@dataclass(eq=False)
class FloatLit(Expr):
    value: float


@dataclass(eq=False)
class BoolLit(Expr):
    value: bool


@dataclass(eq=False)
class VarRef(Expr):
    """Reference to a local variable, parameter, field, or global.

    Name resolution (local vs. implicit field vs. global) is performed by
    the type checker and recorded in ``binding``:  one of ``"local"``,
    ``"field"``, ``"global"`` or ``None`` when unresolved.
    """

    name: str
    binding: str = None


@dataclass(eq=False)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(eq=False)
class UnaryOp(Expr):
    op: str
    operand: Expr


@dataclass(eq=False)
class Call(Expr):
    """Free-function or builtin call: ``f(a, b)``."""

    name: str
    args: list


@dataclass(eq=False)
class MethodCall(Expr):
    """Method call on an object expression: ``obj.m(a, b)``."""

    receiver: Expr
    name: str
    args: list


@dataclass(eq=False)
class Index(Expr):
    """Array element access ``base[index]``."""

    base: Expr
    index: Expr


@dataclass(eq=False)
class FieldAccess(Expr):
    """Field read ``obj.f``."""

    obj: Expr
    name: str


@dataclass(eq=False)
class NewArray(Expr):
    elem_type: Type
    size: Expr


@dataclass(eq=False)
class NewObject(Expr):
    class_name: str


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt(Node):
    """Base class for statements."""


@dataclass(eq=False)
class VarDecl(Stmt):
    var_type: Type
    name: str
    init: Expr = None


@dataclass(eq=False)
class Assign(Stmt):
    """Assignment; ``target`` is a :class:`VarRef`, :class:`Index` or
    :class:`FieldAccess`."""

    target: Expr
    value: Expr


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then_body: list
    else_body: list = field(default_factory=list)


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: list


@dataclass(eq=False)
class For(Stmt):
    """C-style for loop.  ``init`` and ``update`` are simple statements
    (:class:`VarDecl` or :class:`Assign`) or ``None``."""

    init: Stmt
    cond: Expr
    update: Stmt
    body: list


@dataclass(eq=False)
class Return(Stmt):
    value: Expr = None


@dataclass(eq=False)
class CallStmt(Stmt):
    """Expression statement wrapping a :class:`Call` or :class:`MethodCall`."""

    call: Expr


@dataclass(eq=False)
class Print(Stmt):
    value: Expr


@dataclass(eq=False)
class Break(Stmt):
    pass


@dataclass(eq=False)
class Continue(Stmt):
    pass


@dataclass(eq=False)
class Block(Stmt):
    """A bare ``{ ... }`` scope."""

    body: list


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Param(Node):
    param_type: Type
    name: str


@dataclass(eq=False)
class Function(Node):
    """A free function (``func``) or a class method (``method``)."""

    name: str
    params: list
    ret_type: Type  # None means void
    body: list
    owner: str = None  # class name when this is a method

    @property
    def is_method(self):
        return self.owner is not None

    @property
    def qualified_name(self):
        if self.owner:
            return "%s.%s" % (self.owner, self.name)
        return self.name


@dataclass(eq=False)
class FieldDecl(Node):
    field_type: Type
    name: str


@dataclass(eq=False)
class GlobalDecl(Node):
    var_type: Type
    name: str
    init: Expr = None


@dataclass(eq=False)
class ClassDecl(Node):
    name: str
    fields: list
    methods: list


@dataclass(eq=False)
class Program(Node):
    globals: list
    classes: list
    functions: list

    def function(self, name):
        """Look up a free function or ``Class.method`` by qualified name."""
        for fn in self.all_functions():
            if fn.qualified_name == name or fn.name == name:
                return fn
        raise KeyError(name)

    def all_functions(self):
        """All free functions followed by all class methods."""
        out = list(self.functions)
        for cls in self.classes:
            out.extend(cls.methods)
        return out

    def class_decl(self, name):
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_expr_lists(stmt):
    """Expressions directly owned by ``stmt`` (not those of nested stmts)."""
    if isinstance(stmt, VarDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, For):
        out = []
        if stmt.cond is not None:
            out.append(stmt.cond)
        return out
    if isinstance(stmt, Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, CallStmt):
        return [stmt.call]
    if isinstance(stmt, Print):
        return [stmt.value]
    return []


def child_stmt_lists(stmt):
    """Statement lists nested directly inside ``stmt``."""
    if isinstance(stmt, If):
        return [stmt.then_body, stmt.else_body]
    if isinstance(stmt, While):
        return [stmt.body]
    if isinstance(stmt, For):
        pre = [s for s in (stmt.init, stmt.update) if s is not None]
        return [pre, stmt.body] if pre else [stmt.body]
    if isinstance(stmt, Block):
        return [stmt.body]
    return []


def walk_stmts(stmts):
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        for sub in child_stmt_lists(stmt):
            for inner in walk_stmts(sub):
                yield inner


def walk_exprs(expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        for e in walk_exprs(expr.left):
            yield e
        for e in walk_exprs(expr.right):
            yield e
    elif isinstance(expr, UnaryOp):
        for e in walk_exprs(expr.operand):
            yield e
    elif isinstance(expr, Call):
        for arg in expr.args:
            for e in walk_exprs(arg):
                yield e
    elif isinstance(expr, MethodCall):
        for e in walk_exprs(expr.receiver):
            yield e
        for arg in expr.args:
            for e in walk_exprs(arg):
                yield e
    elif isinstance(expr, Index):
        for e in walk_exprs(expr.base):
            yield e
        for e in walk_exprs(expr.index):
            yield e
    elif isinstance(expr, FieldAccess):
        for e in walk_exprs(expr.obj):
            yield e
    elif isinstance(expr, NewArray):
        for e in walk_exprs(expr.size):
            yield e


def stmt_exprs(stmt):
    """Yield every expression (recursively) owned directly by ``stmt``."""
    for top in child_expr_lists(stmt):
        for e in walk_exprs(top):
            yield e


def structurally_equal(a, b):
    """Structural (shape + literal) equality for AST nodes and node lists.

    Ignores ``uid`` and source positions; used by round-trip tests.
    """
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, list) or isinstance(b, list):
        if not (isinstance(a, list) and isinstance(b, list)):
            return False
        if len(a) != len(b):
            return False
        return all(structurally_equal(x, y) for x, y in zip(a, b))
    if type(a) is not type(b):
        return False
    if not isinstance(a, Node):
        return a == b
    for name in a.__dataclass_fields__:
        if not structurally_equal(getattr(a, name), getattr(b, name)):
            return False
    return True
