"""Error types shared by the language frontend."""


class LangError(Exception):
    """Base class for all frontend errors.

    Carries an optional source position so tools can report ``file:line:col``
    style diagnostics.
    """

    def __init__(self, message, line=None, col=None):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(str(self))

    def __str__(self):
        if self.line is not None:
            return "%d:%d: %s" % (self.line, self.col or 0, self.message)
        return self.message


class LexError(LangError):
    """Raised when the lexer encounters an invalid character or literal."""


class ParseError(LangError):
    """Raised when the parser encounters an unexpected token."""


class TypeError_(LangError):
    """Raised by the type checker.

    Named with a trailing underscore to avoid shadowing the builtin.
    """
