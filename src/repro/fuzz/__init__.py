"""Differential fuzzing subsystem (docs/TESTING.md).

Three cooperating pieces:

* :mod:`repro.fuzz.generate` — a deterministic, seed-driven program
  generator.  Every emitted program type-checks and terminates under a
  small step budget by construction.
* :mod:`repro.fuzz.oracle` — the differential oracle: runs one program
  through the full execution-configuration matrix (original vs split,
  AST vs compiled engine, batching on/off, in-process channel vs the
  real socket transport) and diffs outputs, step counts and transcript
  shapes against the reference configuration.
* :mod:`repro.fuzz.reduce` — a delta-debugging minimizer that shrinks a
  diverging program to a minimal ``.mj`` repro for ``tests/fuzz_corpus/``.

:mod:`repro.fuzz.selfcheck` wires them together against a deliberately
planted evaluator bug, proving the harness can actually catch one.
The ``repro fuzz`` CLI (:mod:`repro.cli`) drives campaigns.
"""

from repro.fuzz.generate import GenConfig, RandomDraw, generate_program  # noqa: F401
from repro.fuzz.oracle import (  # noqa: F401
    CONFIG_NAMES,
    Divergence,
    run_matrix,
)
from repro.fuzz.reduce import minimize  # noqa: F401
