"""Seed-driven program generator for the differential fuzzer.

The grammar is written against a tiny *choice source* interface
(:class:`Draw`) so the same building blocks serve two masters:

* the fuzzer draws from :class:`RandomDraw` (a seeded
  :class:`random.Random`) — fully deterministic per seed;
* the hypothesis property tests (``tests/genprograms.py``) adapt
  ``draw`` into the same interface, so shrinking and replay work there
  while the fuzzer and the property suite share one grammar.

Every generated program is correct by construction:

* it type-checks (names are tracked with their types; division and
  remainder only ever see non-zero constant divisors);
* it terminates — every loop is counted with a small constant bound,
  there is no recursion, and multiplication inside loop bodies is
  restricted to ``expr * small-constant`` so values grow at most
  geometrically in the (bounded) iteration count;
* array accesses are in bounds (constant indices below the array
  length, or a loop variable whose bound is below the array length).

Feature coverage goes well beyond ``tests/genprograms.py``: classes
with fields and methods (method splitting + the paper's instance ids),
global variables, a second callee function, nested counted loops with
guarded ``break``, and several candidate hidden variables per function.
"""

import random

from repro.lang import builders as b

#: array length used by every generated program (loop bounds stay below it)
ARRAY_LEN = 8

#: candidate hidden variables declared in every generated function
INT_LOCALS = ("v0", "v1", "v2", "v3")
BOOL_LOCAL = "flag"

_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_ARITH_OPS = ("+", "-", "*")


class GenError(Exception):
    """The generator produced an invalid program (a bug in the grammar)."""


class Draw:
    """Choice-source interface the grammar draws from."""

    def integer(self, lo, hi):
        raise NotImplementedError

    def choice(self, options):
        raise NotImplementedError

    def boolean(self, numerator=1, denominator=2):
        """True with probability ``numerator/denominator``."""
        return self.integer(0, denominator - 1) < numerator


class RandomDraw(Draw):
    """Deterministic choice source over a seeded :class:`random.Random`."""

    def __init__(self, seed):
        self.rng = random.Random(seed)

    def integer(self, lo, hi):
        return self.rng.randint(lo, hi)

    def choice(self, options):
        options = list(options)
        return options[self.rng.randrange(len(options))]


class GenConfig:
    """Size and feature knobs for one generated program."""

    def __init__(self, max_stmts=7, expr_depth=2, loop_nesting=2,
                 with_classes=True, with_globals=True, with_callee=True,
                 with_floats=False):
        self.max_stmts = max_stmts
        self.expr_depth = expr_depth
        self.loop_nesting = loop_nesting
        self.with_classes = with_classes
        self.with_globals = with_globals
        self.with_callee = with_callee
        self.with_floats = with_floats


class Scope:
    """Names visible at a generation site, by type.

    ``ints``/``bools`` are readable; ``writable_ints``/``writable_bools``
    are the subsets assignments may target (parameters are read-only by
    convention — hiding never applies to them and some style checkers
    reject writes)."""

    def __init__(self, ints=(), bools=(), arrays=(), callees=(),
                 writable_ints=None, writable_bools=None, in_loop=False):
        self.ints = list(ints)          # readable int names
        self.bools = list(bools)        # readable bool names
        self.writable_ints = list(ints if writable_ints is None
                                  else writable_ints)
        self.writable_bools = list(bools if writable_bools is None
                                   else writable_bools)
        self.arrays = list(arrays)      # int[] names of length ARRAY_LEN
        self.indices = []               # loop vars provably < ARRAY_LEN
        self.callees = list(callees)    # (name, n_int_args) callable here
        self.in_loop = in_loop
        self._fresh = 0

    def add_int(self, name, writable=True):
        self.ints.append(name)
        if writable:
            self.writable_ints.append(name)

    def add_bool(self, name, writable=True):
        self.bools.append(name)
        if writable:
            self.writable_bools.append(name)

    def fresh_loop_var(self):
        name = "k%d" % self._fresh
        self._fresh += 1
        return name

    def nested(self, index_var=None):
        inner = Scope(self.ints, self.bools, self.arrays, self.callees,
                      writable_ints=self.writable_ints,
                      writable_bools=self.writable_bools, in_loop=True)
        inner.indices = list(self.indices)
        if index_var is not None:
            # the loop variable is readable and a safe array index, but
            # never writable: a body write could defeat the loop bound
            inner.indices.append(index_var)
            inner.ints.append(index_var)
        inner._fresh = self._fresh
        return inner

    def merge_fresh(self, inner):
        self._fresh = max(self._fresh, inner._fresh)


# --------------------------------------------------------------------------
# expressions

def int_expr(d, scope, depth):
    """An int-typed expression over the names in ``scope``.

    Inside loops (``scope.in_loop``) multiplication keeps one operand a
    small constant so repeated assignment cannot blow values up
    super-geometrically in the bounded iteration count.
    """
    if depth <= 0:
        return _int_leaf(d, scope)
    kind = d.choice(("leaf", "arith", "arith", "divmod", "neg", "call"))
    if kind == "leaf":
        return _int_leaf(d, scope)
    if kind == "arith":
        op = d.choice(_ARITH_OPS)
        left = int_expr(d, scope, depth - 1)
        if op == "*" and scope.in_loop:
            right = b.lit(d.integer(-4, 4))
        else:
            right = int_expr(d, scope, depth - 1)
        return b.binop(op, left, right)
    if kind == "divmod":
        # non-zero constant divisor: total, deterministic
        op = d.choice(("/", "%"))
        return b.binop(op, int_expr(d, scope, depth - 1),
                       b.lit(d.integer(1, 9)))
    if kind == "neg":
        return b.neg(int_expr(d, scope, depth - 1))
    if kind == "call" and scope.callees:
        name, n_args = d.choice(scope.callees)
        return b.call(name, *[_int_leaf(d, scope) for _ in range(n_args)])
    return _int_leaf(d, scope)


def _int_leaf(d, scope):
    kinds = ["lit", "var", "var"]
    if scope.arrays:
        kinds.append("index")
    kind = d.choice(kinds)
    if kind == "var" and scope.ints:
        return b.var(d.choice(scope.ints))
    if kind == "index" and scope.arrays:
        return b.index(d.choice(scope.arrays), _index_expr(d, scope))
    return b.lit(d.integer(-9, 9))


def _index_expr(d, scope):
    """An in-bounds index: a bounded loop variable or a constant."""
    if scope.indices and d.boolean(1, 2):
        return b.var(d.choice(scope.indices))
    return b.lit(d.integer(0, ARRAY_LEN - 1))


def bool_expr(d, scope, depth):
    """A bool-typed expression (conditions)."""
    if depth <= 0 or d.boolean(1, 2):
        if scope.bools and d.boolean(1, 3):
            return b.var(d.choice(scope.bools))
        return b.binop(d.choice(_CMP_OPS), int_expr(d, scope, 1),
                       int_expr(d, scope, 1))
    kind = d.choice(("and", "or", "not"))
    if kind == "not":
        return b.not_(bool_expr(d, scope, depth - 1))
    op = "&&" if kind == "and" else "||"
    return b.binop(op, bool_expr(d, scope, depth - 1),
                   bool_expr(d, scope, depth - 1))


# --------------------------------------------------------------------------
# statements

def simple_stmt(d, scope, cfg):
    """Assignment to an int local, bool local, or array element."""
    targets = []
    if scope.writable_ints:
        targets += ["int"] * 3
    if scope.writable_bools:
        targets.append("bool")
    if scope.arrays:
        targets.append("array")
    kind = d.choice(targets)
    if kind == "bool":
        return b.assign(d.choice(scope.writable_bools),
                        bool_expr(d, scope, cfg.expr_depth - 1))
    if kind == "array":
        return b.assign(
            b.index(d.choice(scope.arrays), _index_expr(d, scope)),
            int_expr(d, scope, cfg.expr_depth),
        )
    return b.assign(d.choice(scope.writable_ints),
                    int_expr(d, scope, cfg.expr_depth))


def if_stmt(d, scope, cfg, loop_depth):
    cond = bool_expr(d, scope, cfg.expr_depth - 1)
    then_body = stmt_list(d, scope, cfg, d.integer(1, 2), loop_depth)
    else_body = (
        stmt_list(d, scope, cfg, d.integer(1, 2), loop_depth)
        if d.boolean(1, 2) else []
    )
    return b.if_(cond, then_body, else_body)


def counted_loop(d, scope, cfg, loop_depth):
    """``for (int kN = 0; kN < bound; kN = kN + 1) { ... }`` with a
    constant bound below ``ARRAY_LEN`` — always terminates, and the loop
    variable is a safe array index inside the body."""
    var = scope.fresh_loop_var()
    bound = d.integer(1, ARRAY_LEN - 2)
    inner = scope.nested(index_var=var)
    body = stmt_list(d, inner, cfg, d.integer(1, 3), loop_depth + 1)
    if d.boolean(1, 4):
        # a guarded jump; ``continue`` in a for loop still runs the
        # update, so the constant bound keeps holding
        jump = b.break_() if d.boolean(1, 2) else b.continue_()
        body.append(b.if_(bool_expr(d, inner, 1), [jump], []))
    scope.merge_fresh(inner)
    return b.for_(
        b.decl("int", var, b.lit(0)),
        b.lt(var, bound),
        b.assign(var, b.add(var, 1)),
        body,
    )


def stmt_list(d, scope, cfg, n, loop_depth=0):
    out = []
    for _ in range(n):
        kinds = ["simple", "simple", "if"]
        if loop_depth < cfg.loop_nesting:
            kinds.append("loop")
        kind = d.choice(kinds)
        if kind == "simple":
            out.append(simple_stmt(d, scope, cfg))
        elif kind == "if":
            out.append(if_stmt(d, scope, cfg, loop_depth))
        else:
            out.append(counted_loop(d, scope, cfg, loop_depth))
    return out


# --------------------------------------------------------------------------
# top-level units

def gen_function(d, cfg, name="f", params=(("int", "x"), ("int", "y"),
                                           ("int[]", "B")), callees=()):
    """The function the splitter targets: several candidate hidden int
    locals, a bool local, arrays, branches, and (nested) loops."""
    param_ints = [p for t, p in params if t == "int"]
    arrays = [p for t, p in params if t == "int[]"]
    scope = Scope(ints=list(param_ints), writable_ints=(), arrays=arrays,
                  callees=callees)
    body = []
    for v in INT_LOCALS:
        body.append(b.decl("int", v, int_expr(d, scope, 1)))
        scope.add_int(v)
    body.append(b.decl("bool", BOOL_LOCAL, bool_expr(d, scope, 1)))
    scope.add_bool(BOOL_LOCAL)
    body.extend(stmt_list(d, scope, cfg, d.integer(2, cfg.max_stmts)))
    body.append(b.ret(int_expr(d, scope, cfg.expr_depth)))
    return b.func(name, list(params), "int", body)


def gen_callee(d, cfg, name="g2"):
    """A small leaf function ``f`` (and ``main``) may call."""
    scope = Scope(ints=["u"], writable_ints=())
    body = [b.decl("int", "t", int_expr(d, scope, 1))]
    scope.add_int("t")
    body.extend(stmt_list(d, scope, GenConfig(max_stmts=2, expr_depth=1,
                                              loop_nesting=1),
                          d.integer(1, 2)))
    body.append(b.ret(int_expr(d, scope, 1)))
    return b.func(name, [("int", "u")], "int", body)


def gen_class(d, cfg, name="Box"):
    """A class with int fields and two methods: a mutator with a local
    (a method-splitting candidate) and a reader over the fields."""
    fields = [("int", "a"), ("int", "b")]
    field_names = [n for _t, n in fields]

    mscope = Scope(ints=["u"] + field_names, writable_ints=field_names)
    mbody = [b.decl("int", "t", int_expr(d, mscope, 1))]
    mscope.add_int("t")
    mcfg = GenConfig(max_stmts=3, expr_depth=cfg.expr_depth, loop_nesting=1)
    mbody.extend(stmt_list(d, mscope, mcfg, d.integer(1, 3)))
    mbody.append(b.assign(d.choice(field_names), int_expr(d, mscope, 1)))
    mbody.append(b.ret(int_expr(d, mscope, 1)))
    step = b.func("step", [("int", "u")], "int", mbody)

    rscope = Scope(ints=field_names)
    total = b.func("total", [], "int", [b.ret(int_expr(d, rscope, 2))])
    return b.class_(name, fields, [step, total])


def gen_global(d, name="g0"):
    return b.global_("int", name, b.lit(d.integer(-9, 9)))


def gen_global_bumper(d, cfg, global_name="g0", name="bump"):
    """A function with a hidden-variable candidate that also reads and
    writes a global — exercises the open/hidden global plumbing."""
    scope = Scope(ints=["w", global_name], writable_ints=[global_name])
    body = [
        b.decl("int", "t", int_expr(d, scope, 1)),
    ]
    scope.add_int("t")
    body.append(b.assign(global_name, b.add(global_name, "t")))
    body.append(b.ret(int_expr(d, scope, 1)))
    return b.func(name, [("int", "w")], "int", body)


def gen_main(d, cfg, features):
    """``main(int x, int y)``: allocate and fill the array, run every
    generated unit, and print every observable effect."""
    scope = Scope(ints=["x", "y"], writable_ints=(), arrays=["B"])
    body = [b.decl("int[]", "B", b.new_array("int", ARRAY_LEN))]
    fill_var = scope.fresh_loop_var()
    body.append(b.for_(
        b.decl("int", fill_var, b.lit(0)),
        b.lt(fill_var, ARRAY_LEN),
        b.assign(fill_var, b.add(fill_var, 1)),
        [b.assign(b.index("B", fill_var),
                  b.add(b.mul(fill_var, d.integer(-4, 4)), "x"))],
    ))
    body.append(b.print_(b.call("f", "x", "y", "B")))
    if features.get("callee"):
        body.append(b.print_(b.call("g2", d.choice(("x", "y")))))
    if features.get("class"):
        body.append(b.decl("Box", "p", b.new_object("Box")))
        body.append(b.decl("Box", "q", b.new_object("Box")))
        body.append(b.print_(b.method_call("p", "step", "x")))
        body.append(b.print_(b.method_call("q", "step", b.add("y", 1))))
        if d.boolean(1, 2):
            body.append(b.print_(b.method_call("p", "step", "y")))
        body.append(b.print_(b.method_call("p", "total")))
        body.append(b.print_(b.method_call("q", "total")))
        body.append(b.print_(b.field("p", "a")))
    if features.get("global"):
        body.append(b.print_(b.call("bump", "x")))
        body.append(b.print_(b.call("bump", "y")))
        body.append(b.print_(b.var("g0")))
    for i in range(ARRAY_LEN):
        body.append(b.print_(b.index("B", i)))
    return b.func("main", [("int", "x"), ("int", "y")], "void", body)


def gen_program(d, cfg=None):
    """Generate one full program from the choice source ``d``.

    Always contains ``f(int x, int y, int[] B)`` (with the candidate
    hidden locals ``v0..v3``) and ``main(int x, int y)``; classes,
    globals, and a callee function join per-seed.
    """
    cfg = cfg or GenConfig()
    features = {
        "callee": cfg.with_callee and d.boolean(1, 2),
        "class": cfg.with_classes and d.boolean(2, 3),
        "global": cfg.with_globals and d.boolean(1, 2),
    }
    functions, classes, globals_ = [], [], []
    callees = []
    if features["callee"]:
        functions.append(gen_callee(d, cfg))
        callees.append(("g2", 1))
    functions.insert(0, gen_function(d, cfg, callees=callees))
    if features["class"]:
        classes.append(gen_class(d, cfg))
    if features["global"]:
        globals_.append(gen_global(d))
        functions.append(gen_global_bumper(d, cfg))
    functions.append(gen_main(d, cfg, features))
    return b.program(functions=functions, classes=classes, globals_=globals_)


def gen_arg_sets(d, n=2):
    """Argument tuples for ``main(int x, int y)``: one fixed anchor plus
    seed-drawn pairs."""
    sets = [(0, 0)]
    for _ in range(n):
        sets.append((d.integer(-9, 9), d.integer(-9, 9)))
    return sets


def generate_program(seed, cfg=None):
    """Deterministically generate ``(program, arg_sets)`` for ``seed``."""
    d = RandomDraw(seed)
    return gen_program(d, cfg), gen_arg_sets(d)
