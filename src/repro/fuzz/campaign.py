"""Fuzzing campaigns: the seed loop behind ``repro fuzz``.

A campaign walks seeds ``seed, seed+1, ...`` until it has fuzzed
``runs`` programs or spent its time budget, pushing each generated
program through the oracle's configuration matrix.  Divergences are
optionally minimized (:mod:`repro.fuzz.reduce`) and written to the
corpus directory as ``.mj`` repro files whose ``// args:`` header lines
make them standalone — :func:`replay_file` re-runs one through the
oracle, which is also how ``tests/test_fuzz.py`` turns every committed
corpus entry into a regression test.
"""

import time

from repro.fuzz import oracle
from repro.fuzz.generate import generate_program
from repro.fuzz.reduce import minimize, write_repro
from repro.lang.pretty import pretty

#: arg sets used when a replayed corpus file has no ``// args:`` header
DEFAULT_ARG_SETS = ((0, 0), (3, 5), (-4, 7))


class CampaignResult:
    """Counters and findings from one campaign."""

    def __init__(self):
        self.programs = 0
        self.divergent = 0
        self.unsplit = 0
        self.elapsed_s = 0.0
        self.findings = []       # (seed, MatrixResult)
        self.repro_paths = []

    @property
    def ok(self):
        return self.divergent == 0


def fuzz_one(seed, configs=None, max_steps=oracle.DEFAULT_MAX_STEPS):
    """Generate and differentially test the program for one seed."""
    program, arg_sets = generate_program(seed)
    source = pretty(program)
    return source, arg_sets, oracle.run_matrix(
        source, arg_sets, configs=configs, max_steps=max_steps)


def _minimize_finding(seed, source, arg_sets, configs, corpus_dir):
    """Shrink a diverging program and write the repro file."""

    def interesting(src):
        return oracle.run_matrix(src, arg_sets, configs=configs).diverged

    minimized = minimize(source, interesting)
    final = oracle.run_matrix(minimized, arg_sets, configs=configs)
    header = ["repro-fuzz minimized divergence", "seed: %d" % seed]
    header += ["divergence: %s" % d.describe() for d in final.divergences[:4]]
    header += ["args: %s" % " ".join(str(a) for a in args)
               for args in arg_sets]
    return write_repro(corpus_dir, minimized, header_lines=header, seed=seed)


def run_campaign(seed=0, runs=100, time_budget=None, jobs=1, configs=None,
                 minimize_divergences=False, corpus_dir="tests/fuzz_corpus",
                 max_steps=oracle.DEFAULT_MAX_STEPS, progress=None):
    """Run a campaign; returns a :class:`CampaignResult`.

    ``runs=None`` runs until ``time_budget`` (seconds) expires; with both
    set, whichever limit hits first ends the campaign.  ``jobs`` > 1
    fans seeds out to worker threads (socket configurations spend much
    of their time in network waits, so threads do overlap usefully).
    """
    if runs is None and time_budget is None:
        raise ValueError("campaign needs --runs or --time-budget")
    configs = tuple(configs) if configs else oracle.CONFIGS
    started = time.monotonic()
    result = CampaignResult()

    def out_of_time():
        return (time_budget is not None
                and time.monotonic() - started >= time_budget)

    def handle(seed_, source, arg_sets, matrix):
        result.programs += 1
        if not matrix.split_summary:
            result.unsplit += 1
        if matrix.diverged:
            result.divergent += 1
            result.findings.append((seed_, matrix))
            if minimize_divergences:
                result.repro_paths.append(_minimize_finding(
                    seed_, source, arg_sets, configs, corpus_dir))
        if progress is not None:
            progress(result)

    def seeds():
        s = seed
        while runs is None or s < seed + runs:
            yield s
            s += 1

    if jobs <= 1:
        for s in seeds():
            if out_of_time():
                break
            handle(s, *fuzz_one(s, configs, max_steps))
    else:
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
            pending = {}
            it = seeds()
            done = False
            while not done or pending:
                while not done and len(pending) < jobs * 2:
                    if out_of_time():
                        done = True
                        break
                    try:
                        s = next(it)
                    except StopIteration:
                        done = True
                        break
                    pending[pool.submit(fuzz_one, s, configs, max_steps)] = s
                if not pending:
                    break
                completed, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED)
                for fut in completed:
                    s = pending.pop(fut)
                    handle(s, *fut.result())

    result.elapsed_s = time.monotonic() - started
    return result


def _parse_header_args(source):
    arg_sets = []
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped.startswith("//"):
            break
        body = stripped[2:].strip()
        if body.startswith("args:"):
            parts = body[len("args:"):].split()
            try:
                arg_sets.append(tuple(int(p) for p in parts))
            except ValueError:
                continue
    return arg_sets


def replay_file(path, configs=None, max_steps=oracle.DEFAULT_MAX_STEPS):
    """Replay one corpus ``.mj`` file through the oracle.

    Argument tuples come from the file's ``// args:`` header lines
    (falling back to :data:`DEFAULT_ARG_SETS`).  Returns the
    :class:`~repro.fuzz.oracle.MatrixResult`."""
    with open(path) as f:
        source = f.read()
    arg_sets = _parse_header_args(source) or list(DEFAULT_ARG_SETS)
    return oracle.run_matrix(source, arg_sets, configs=configs,
                             max_steps=max_steps)
