"""The differential oracle: one program, every execution configuration.

The reference configuration is the original (unsplit) program on the AST
engine — the straightforward implementation of the language semantics.
Every other configuration must agree with it on *observable behaviour*
(printed output and entry return value), and configurations that differ
only in execution strategy must also agree on the fine-grained accounting:

* ``original-compiled`` — same step count as the reference;
* ``split-ast`` vs ``split-compiled`` and ``split-codegen`` vs
  ``split-compiled`` (and their ``-batch`` variants) — identical
  open/hidden step counts, round-trip counts, and transcript event-kind
  sequences (the engines are documented bit-identical, docs/ENGINE.md);
* ``socket-*`` — the real TCP transport must carry exactly the traffic
  the simulated channel accounts for (plus the one ``hello`` handshake
  round trip when batching is on, docs/PROTOCOL.md);
* ``socket-compiled-traced`` — distributed tracing on (``--trace``):
  trace context and phase measurement must not change behaviour *or*
  accounting, so its round-trip count is checked against the untraced
  ``split-compiled`` cell with no handshake allowance at all (the trace
  hello is deliberately uncounted, docs/PROTOCOL.md);
* ``split-cache`` / ``split-cache-codegen`` / ``socket-cache`` — the
  fragment result cache on (``--cache on``, docs/CACHING.md): hits must
  be bit-identical to real executions, so the cache cells are held to
  the engine-equivalence bar (steps *and* transcript kinds) against
  their uncached counterparts, and the socket cell's cache hello is
  uncounted like the trace hello.

A program whose automatic selection finds nothing to split (or where an
explicit choice raises ``SplitError``) skips the split configurations —
that is a selection outcome, not a divergence.
"""

from repro import obs
from repro.core.pipeline import split_source
from repro.core.splitter import SplitError
from repro.runtime.channel import LatencyModel
from repro.runtime.splitrun import run_original, run_split, _values_differ

#: exported metric names (documented in docs/OBSERVABILITY.md)
M_PROGRAMS = "repro_fuzz_programs_total"
M_DIVERGENCES = "repro_fuzz_divergences_total"

#: the reference configuration every other one is diffed against
BASELINE = "original-ast"

#: generated programs are tiny; a run that needs more steps than this is
#: itself a generator bug worth surfacing
DEFAULT_MAX_STEPS = 2_000_000


class Config:
    """One cell of the execution matrix."""

    __slots__ = ("name", "split", "engine", "batching", "socket", "trace",
                 "cache")

    def __init__(self, name, split, engine, batching=False, socket=False,
                 trace=False, cache=False):
        self.name = name
        self.split = split
        self.engine = engine
        self.batching = batching
        self.socket = socket
        self.trace = trace
        self.cache = cache

    def __repr__(self):
        return "<Config %s>" % self.name


#: the full matrix: original/split x ast/compiled/codegen x batching x transport.
#: socket configs pick the *client* engine; the in-process server runs the
#: default engine, so ``socket-ast`` additionally crosses engines between
#: the two sides.
CONFIGS = (
    Config("original-compiled", split=False, engine="compiled"),
    Config("split-ast", split=True, engine="ast"),
    Config("split-compiled", split=True, engine="compiled"),
    Config("split-ast-batch", split=True, engine="ast", batching=True),
    Config("split-compiled-batch", split=True, engine="compiled",
           batching=True),
    Config("split-codegen", split=True, engine="codegen"),
    Config("split-codegen-batch", split=True, engine="codegen",
           batching=True),
    Config("socket-ast", split=True, engine="ast", socket=True),
    Config("socket-compiled", split=True, engine="compiled", socket=True),
    Config("socket-compiled-batch", split=True, engine="compiled",
           batching=True, socket=True),
    Config("socket-compiled-traced", split=True, engine="compiled",
           socket=True, trace=True),
    Config("socket-codegen", split=True, engine="codegen", socket=True),
    Config("split-cache", split=True, engine="compiled", cache=True),
    Config("split-cache-codegen", split=True, engine="codegen", cache=True),
    Config("socket-cache", split=True, engine="compiled", socket=True,
           cache=True),
)

CONFIG_NAMES = tuple(c.name for c in CONFIGS)

#: accounting cross-checks between configurations that must carry the
#: same traffic: (left, right, hello_delta) — left's round-trip count
#: must equal right's plus ``hello_delta``
_TRAFFIC_PAIRS = (
    ("split-ast", "split-compiled", 0),
    ("split-ast-batch", "split-compiled-batch", 0),
    ("socket-ast", "split-ast", 0),
    ("socket-compiled", "split-compiled", 0),
    ("split-codegen", "split-compiled", 0),
    ("split-codegen-batch", "split-compiled-batch", 0),
    ("socket-codegen", "split-codegen", 0),
    ("socket-compiled-batch", "split-compiled-batch", 1),
    # tracing rides in frame fields and an uncounted handshake frame, so a
    # traced run's accounting is identical to the plain socket run's
    ("socket-compiled-traced", "split-compiled", 0),
    # caching must not change traffic at all: hits replay the very round
    # trips a real execution performs, and the socket cell's cache hello
    # is uncounted like the trace hello (docs/CACHING.md)
    ("split-cache", "split-compiled", 0),
    ("split-cache-codegen", "split-codegen", 0),
    ("socket-cache", "split-cache", 0),
)


def select_configs(spec):
    """Resolve a ``--configs`` comma-separated spec to Config objects."""
    if not spec:
        return CONFIGS
    wanted = [s.strip() for s in spec.split(",") if s.strip()]
    by_name = {c.name: c for c in CONFIGS}
    unknown = [w for w in wanted if w not in by_name]
    if unknown:
        raise ValueError(
            "unknown config %s (known: %s)"
            % (", ".join(unknown), ", ".join(CONFIG_NAMES))
        )
    return tuple(by_name[w] for w in wanted)


class Observation:
    """What one run under one configuration looked like."""

    __slots__ = ("value", "output", "steps_open", "steps_hidden",
                 "interactions", "kinds", "error")

    def __init__(self, value=None, output=(), steps_open=0, steps_hidden=0,
                 interactions=0, kinds=(), error=None):
        self.value = value
        self.output = list(output)
        self.steps_open = steps_open
        self.steps_hidden = steps_hidden
        self.interactions = interactions
        self.kinds = tuple(kinds)
        self.error = error


class Divergence:
    """One observed disagreement between two configurations."""

    __slots__ = ("config", "against", "kind", "detail", "args")

    def __init__(self, config, against, kind, detail, args):
        self.config = config
        self.against = against
        self.kind = kind
        self.detail = detail
        self.args = tuple(args)

    def describe(self):
        return "%s vs %s [%s] args=%r: %s" % (
            self.config, self.against, self.kind, self.args, self.detail
        )

    def __repr__(self):
        return "<Divergence %s>" % self.describe()


class MatrixResult:
    """All observations and divergences for one program."""

    def __init__(self, source, arg_sets, configs, split_summary):
        self.source = source
        self.arg_sets = list(arg_sets)
        self.configs = [c.name for c in configs]
        self.split_summary = split_summary  # e.g. "f:a,Box.step:t" or ""
        self.observations = {}  # (config_name, args) -> Observation
        self.divergences = []

    @property
    def diverged(self):
        return bool(self.divergences)


def _observe(thunk):
    try:
        result = thunk()
    except Exception as exc:  # a crash is an observation, not a campaign abort
        return Observation(error="%s: %s" % (type(exc).__name__, exc))
    kinds = ()
    interactions = 0
    if result.channel is not None:
        interactions = result.channel.interactions
        transcript = getattr(result.channel, "transcript", None)
        if transcript is not None:
            kinds = tuple(e.kind for e in transcript.events)
    return Observation(result.value, result.output, result.steps_open,
                       result.steps_hidden, interactions, kinds)


def _run_config(config, program, sp, address, args, max_steps):
    if not config.split:
        return _observe(lambda: run_original(
            program, args=args, max_steps=max_steps, engine=config.engine))
    if config.socket:
        from repro.runtime.remote import run_split_remote

        return _observe(lambda: run_split_remote(
            sp, address, args=args, max_steps=max_steps,
            batching=config.batching, engine=config.engine,
            trace=config.trace, cache=config.cache))
    return _observe(lambda: run_split(
        sp, args=args, latency=LatencyModel.instant(), max_steps=max_steps,
        batching=config.batching, engine=config.engine, cache=config.cache))


def _diff_behaviour(result, config_name, base, obs_, args):
    """Output / return value / error identity against the reference."""
    found = []
    if (base.error is None) != (obs_.error is None) or (
        base.error is not None and base.error != obs_.error
    ):
        found.append(Divergence(config_name, BASELINE, "error",
                                "%r vs %r" % (base.error, obs_.error), args))
        return found
    if base.error is not None:
        return found  # both failed identically; nothing more to compare
    if obs_.output != base.output:
        found.append(Divergence(
            config_name, BASELINE, "output",
            "expected %r, got %r" % (base.output, obs_.output), args))
    if _values_differ(base.value, obs_.value):
        found.append(Divergence(
            config_name, BASELINE, "value",
            "expected %r, got %r" % (base.value, obs_.value), args))
    return found


def _diff_accounting(result, present, args):
    """Step-count and transcript-shape agreement between configurations
    that must execute identically."""
    found = []
    base = result.observations.get((BASELINE, args))
    oc = present.get("original-compiled")
    if oc is not None and oc.error is None and base.error is None:
        if oc.steps_open != base.steps_open:
            found.append(Divergence(
                "original-compiled", BASELINE, "steps",
                "%d vs %d open steps" % (oc.steps_open, base.steps_open),
                args))
    for eng_pair in (("split-ast", "split-compiled"),
                     ("split-ast-batch", "split-compiled-batch"),
                     ("split-codegen", "split-compiled"),
                     ("split-codegen-batch", "split-compiled-batch"),
                     # cache cells: a hit must replay the exact steps and
                     # transcript of the execution it memoized
                     ("split-cache", "split-compiled"),
                     ("split-cache-codegen", "split-codegen")):
        a, b = (present.get(n) for n in eng_pair)
        if a is None or b is None or a.error or b.error:
            continue
        if (a.steps_open, a.steps_hidden) != (b.steps_open, b.steps_hidden):
            found.append(Divergence(
                eng_pair[0], eng_pair[1], "steps",
                "open+hidden %d+%d vs %d+%d"
                % (a.steps_open, a.steps_hidden, b.steps_open,
                   b.steps_hidden), args))
        if a.kinds != b.kinds:
            found.append(Divergence(
                eng_pair[0], eng_pair[1], "transcript",
                "event kinds %r vs %r" % (a.kinds, b.kinds), args))
    for left, right, hello in _TRAFFIC_PAIRS:
        a, b = present.get(left), present.get(right)
        if a is None or b is None or a.error or b.error:
            continue
        if a.interactions != b.interactions + hello:
            found.append(Divergence(
                left, right, "interactions",
                "%d vs %d (+%d handshake)"
                % (a.interactions, b.interactions, hello), args))
    return found


def run_matrix(source, arg_sets, configs=None, choices=None, hide=None,
               max_steps=DEFAULT_MAX_STEPS):
    """Run ``source`` through the configuration matrix and diff everything.

    ``arg_sets`` is a sequence of argument tuples for ``main``.  With
    ``hide`` set to a global variable name the split is produced by
    :func:`repro.core.globals.hide_global` instead of variable choices —
    the only way to get hidden *storage* (and therefore cache
    invalidation traffic) into the matrix.  Returns a
    :class:`MatrixResult`; ``result.divergences`` is empty when every
    configuration agrees.
    """
    configs = tuple(configs) if configs else CONFIGS
    try:
        if hide is not None:
            from repro.core.globals import hide_global
            from repro.lang import check_program, parse_program

            program = parse_program(source)
            checker = check_program(program)
            sp = hide_global(program, checker, hide)
        else:
            program, _checker, sp = split_source(source, choices=choices)
    except SplitError:
        # an explicit choice the splitter (documentedly) rejects: compare
        # only the unsplit configurations
        from repro.lang import check_program, parse_program

        program = parse_program(source)
        check_program(program)
        sp = None
    if sp is not None and not sp.splits:
        sp = None
    split_summary = ""
    if sp is not None:
        split_summary = ",".join(
            "%s:%s" % (name, "+".join(sorted(split.fully_hidden))
                       or "+".join(sorted(split.hidden_vars)))
            for name, split in sorted(sp.splits.items())
        )
    result = MatrixResult(source, arg_sets, configs, split_summary)

    need_socket = sp is not None and any(c.socket for c in configs)
    server_ctx = None
    address = None
    if need_socket:
        from repro.runtime.remote import remote_server

        server_ctx = remote_server(sp)
        address = server_ctx.__enter__()
    try:
        for args in arg_sets:
            base = _observe(lambda: run_original(
                program, args=args, max_steps=max_steps, engine="ast"))
            result.observations[(BASELINE, args)] = base
            present = {}
            for config in configs:
                if config.split and sp is None:
                    continue
                obs_ = _run_config(config, program, sp, address, args,
                                   max_steps)
                result.observations[(config.name, args)] = obs_
                present[config.name] = obs_
                result.divergences.extend(
                    _diff_behaviour(result, config.name, base, obs_, args))
            result.divergences.extend(_diff_accounting(result, present, args))
    finally:
        if server_ctx is not None:
            server_ctx.__exit__(None, None, None)

    registry = obs.get_registry()
    if registry.enabled:
        registry.counter(M_PROGRAMS, help="programs fuzzed").inc()
        if result.diverged:
            registry.counter(M_DIVERGENCES, help="diverging programs").inc()
    return result
