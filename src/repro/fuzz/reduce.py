"""Delta-debugging minimizer for diverging programs.

Shrinks a program while an ``is_interesting(source) -> bool`` predicate
(supplied by the caller — typically "the differential oracle still
reports a divergence") keeps holding.  Works on pretty-printed source:
every candidate is re-parsed and re-type-checked before the predicate
runs, so the minimizer can *propose* aggressively and let the language
front end veto nonsense — a removal that orphans a variable use simply
fails the type check and is skipped.

Passes, applied to a fixpoint:

1. **unit removal** — drop whole functions, classes, and globals;
2. **statement removal** — ddmin-style chunked deletion over every
   statement list (function bodies, branch and loop bodies);
3. **unwrapping** — replace an ``if``/``while``/``for`` with its body;
4. **expression simplification** — replace initialisers, right-hand
   sides, returned/printed values and conditions with small literals or
   with one operand of a binary expression.

The result is written to ``tests/fuzz_corpus/`` by the fuzz CLI so a
diverging program becomes a committed regression test.
"""

import hashlib

from repro.lang import ast, check_program, parse_program
from repro.lang.pretty import pretty

#: upper bound on predicate evaluations per minimization, so a slow or
#: flaky predicate cannot hang a campaign
DEFAULT_BUDGET = 4000


class _Budget:
    def __init__(self, limit):
        self.remaining = limit

    def spend(self):
        self.remaining -= 1
        return self.remaining >= 0


def _valid(source):
    try:
        check_program(parse_program(source))
        return True
    except Exception:
        return False


def _reparse(source):
    return parse_program(source)


def _all_functions(program):
    fns = list(program.functions)
    for cls in program.classes:
        fns.extend(cls.methods)
    return fns


def _stmt_lists(program):
    """Every statement list in the program, in a deterministic order that
    is stable across re-parses of the same source."""
    lists = []
    for fn in _all_functions(program):
        stack = [fn.body]
        while stack:
            body = stack.pop()
            lists.append(body)
            for stmt in body:
                stack.extend(reversed(ast.child_stmt_lists(stmt)))
    return lists


def _expr_slots(program):
    """Assignable expression slots as ``(get, set)`` closures over the
    parsed program, in deterministic order."""
    slots = []

    def add(obj, attr):
        if getattr(obj, attr, None) is not None:
            slots.append((obj, attr))

    for fn in _all_functions(program):
        for stmt in ast.walk_stmts(fn.body):
            if isinstance(stmt, (ast.VarDecl,)):
                add(stmt, "init")
            elif isinstance(stmt, ast.Assign):
                add(stmt, "value")
            elif isinstance(stmt, ast.Return):
                add(stmt, "value")
            elif isinstance(stmt, ast.Print):
                add(stmt, "value")
            elif isinstance(stmt, (ast.If, ast.While)):
                add(stmt, "cond")
            elif isinstance(stmt, ast.For):
                add(stmt, "cond")
    return slots


def _try(source, mutate, is_interesting, budget):
    """Apply ``mutate`` to a fresh parse; return new source if it stays
    valid and interesting, else None."""
    if not budget.spend():
        return None
    program = _reparse(source)
    if not mutate(program):
        return None
    candidate = pretty(program)
    if candidate == source or not _valid(candidate):
        return None
    return candidate if is_interesting(candidate) else None


def _unit_pass(source, is_interesting, budget):
    changed = True
    progressed = False
    while changed and budget.remaining > 0:
        changed = False
        program = _reparse(source)
        n_fns = len(program.functions)
        n_cls = len(program.classes)
        n_glb = len(program.globals)
        for i in range(n_fns):
            if program.functions[i].name == "main":
                continue

            def drop_fn(p, i=i):
                del p.functions[i]
                return True

            new = _try(source, drop_fn, is_interesting, budget)
            if new:
                source, changed, progressed = new, True, True
                break
        if changed:
            continue
        for i in range(n_cls):
            def drop_cls(p, i=i):
                del p.classes[i]
                return True

            new = _try(source, drop_cls, is_interesting, budget)
            if new:
                source, changed, progressed = new, True, True
                break
        if changed:
            continue
        for i in range(n_glb):
            def drop_glb(p, i=i):
                del p.globals[i]
                return True

            new = _try(source, drop_glb, is_interesting, budget)
            if new:
                source, changed, progressed = new, True, True
                break
    return source, progressed


def _stmt_pass(source, is_interesting, budget):
    """Chunked statement deletion: classic ddmin schedule per list.

    Lists are visited in the pre-order DFS index of :func:`_stmt_lists`;
    deleting from list ``li`` only ever removes lists *after* ``li`` (its
    statements' own bodies), so indices up to ``li`` stay valid and the
    pass never needs a full restart."""
    progressed = False
    li = 0
    while budget.remaining > 0:
        lists = _stmt_lists(_reparse(source))
        if li >= len(lists):
            break
        size = max(len(lists[li]), 1)
        while size >= 1 and budget.remaining > 0:
            start = 0
            while start < len(_stmt_lists(_reparse(source))[li]):
                def drop(p, li=li, start=start, size=size):
                    target = _stmt_lists(p)[li]
                    if start >= len(target):
                        return False
                    del target[start:start + size]
                    return True

                new = _try(source, drop, is_interesting, budget)
                if new:
                    source, progressed = new, True
                    # the window shrank in place: retry the same start
                else:
                    start += size
            size //= 2
        li += 1
    return source, progressed


def _unwrap_pass(source, is_interesting, budget):
    """Replace compound statements with (one of) their bodies, visiting
    sites in order; a successful unwrap re-tries the same site (the
    promoted body may itself start with a compound statement)."""
    progressed = False
    li = 0
    while budget.remaining > 0:
        lists = _stmt_lists(_reparse(source))
        if li >= len(lists):
            break
        si = 0
        while si < len(_stmt_lists(_reparse(source))[li]):
            stmt = _stmt_lists(_reparse(source))[li][si]
            n_bodies = 2 if isinstance(stmt, ast.If) else (
                1 if isinstance(stmt, (ast.While, ast.For, ast.Block)) else 0)
            unwrapped = False
            for bi in range(n_bodies):
                def unwrap(p, li=li, si=si, bi=bi):
                    target = _stmt_lists(p)[li]
                    if si >= len(target):
                        return False
                    stmt = target[si]
                    if isinstance(stmt, ast.If):
                        inner = [stmt.then_body, stmt.else_body][bi]
                    elif isinstance(stmt, (ast.While, ast.For, ast.Block)):
                        inner = stmt.body
                    else:
                        return False
                    target[si:si + 1] = list(inner)
                    return True

                new = _try(source, unwrap, is_interesting, budget)
                if new:
                    source, progressed, unwrapped = new, True, True
                    break
            if not unwrapped:
                si += 1
        li += 1
    return source, progressed


_REPLACEMENTS = (
    lambda: ast.IntLit(0),
    lambda: ast.IntLit(1),
    lambda: ast.BoolLit(True),
    lambda: ast.BoolLit(False),
)


def _expr_pass(source, is_interesting, budget):
    """Replace expression slots with small literals or one binary operand.

    Slot count and order are unaffected by these replacements, so the
    pass sweeps each slot once; a successful operand-promotion re-tries
    the same slot (``a + b`` may collapse further)."""
    progressed = False
    i = 0
    while budget.remaining > 0:
        slots = _expr_slots(_reparse(source))
        if i >= len(slots):
            break
        current = getattr(*slots[i])
        ops = ("lit0", "lit1", "true", "false")
        if isinstance(current, ast.BinaryOp):
            ops += ("left", "right")
        replaced = False
        for op in ops:
            if isinstance(current, (ast.IntLit, ast.BoolLit)) and op in (
                    "lit0", "true"):
                continue  # already minimal-ish; still try the alternates

            def replace(p, i=i, op=op):
                fresh = _expr_slots(p)
                if i >= len(fresh):
                    return False
                o, a = fresh[i]
                old = getattr(o, a)
                if op == "lit0":
                    replacement = ast.IntLit(0)
                elif op == "lit1":
                    replacement = ast.IntLit(1)
                elif op == "true":
                    replacement = ast.BoolLit(True)
                elif op == "false":
                    replacement = ast.BoolLit(False)
                else:
                    if not isinstance(old, ast.BinaryOp):
                        return False
                    replacement = old.left if op == "left" else old.right
                setattr(o, a, replacement)
                return True

            new = _try(source, replace, is_interesting, budget)
            if new:
                source, progressed, replaced = new, True, True
                break
        if not replaced or not isinstance(current, ast.BinaryOp):
            i += 1
    return source, progressed


def minimize(source, is_interesting, budget=DEFAULT_BUDGET):
    """Shrink ``source`` while ``is_interesting`` holds; returns the
    minimized source.  The input itself must be interesting."""
    if not is_interesting(source):
        raise ValueError("minimize: the input program is not interesting")
    tracker = _Budget(budget)
    passes = (_unit_pass, _stmt_pass, _unwrap_pass, _expr_pass)
    progressed = True
    while progressed and tracker.remaining > 0:
        progressed = False
        for p in passes:
            source, moved = p(source, is_interesting, tracker)
            progressed = progressed or moved
    return source


def repro_name(source, seed=None):
    """Stable corpus file name for a (minimized) repro."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:10]
    if seed is None:
        return "div-%s.mj" % digest
    return "div-seed%d-%s.mj" % (seed, digest)


def write_repro(corpus_dir, source, header_lines=(), seed=None):
    """Write a minimized repro (with a ``//`` comment header) into the
    corpus directory; returns the path."""
    import os

    os.makedirs(corpus_dir, exist_ok=True)
    name = repro_name(source, seed)
    path = os.path.join(corpus_dir, name)
    header = "".join("// %s\n" % line for line in header_lines)
    with open(path, "w") as f:
        f.write(header + source)
    return path
