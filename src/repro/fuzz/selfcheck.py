"""Harness self-check: plant a bug, prove the fuzzer catches it.

A differential fuzzer that has never caught anything is indistinguishable
from one that cannot.  ``repro fuzz --self-check`` injects a known bug,
runs a short campaign, and asserts:

* the oracle reports a divergence, and only in the configurations the
  planted bug can reach;
* the minimizer shrinks the diverging program to a small ``.mj`` repro;
* with the bug removed, the minimized repro is clean again.

Two plants are available (``--plant``):

* ``engine`` — every int-typed value a hidden fragment returns is off by
  one (:func:`planted_engine_bug`).  The patch wraps
  :meth:`HiddenServer.call`, so it reaches every split configuration:
  all engines, batching on or off, the in-process channel and the real
  socket server.  The unsplit reference runs never touch the hidden
  server and stay correct — exactly the shape of a real transformation
  bug.
* ``stale-cache`` — hidden-store writes stop invalidating the fragment
  result cache (:func:`planted_stale_cache_bug`), so a cached read of a
  hidden global can be served after the store changed underneath it.
  Only the cache-on cells can see this; every other configuration
  executes fragments for real — exactly the shape of a real cache
  coherence bug (docs/CACHING.md).
"""

import contextlib

from repro.fuzz import oracle
from repro.fuzz.generate import generate_program
from repro.fuzz.reduce import minimize
from repro.lang.pretty import pretty
from repro.runtime.cache import FragmentCache
from repro.runtime.server import HiddenServer

#: known planted bugs, by --plant name
PLANTS = ("engine", "stale-cache")


@contextlib.contextmanager
def planted_engine_bug(delta=1):
    """Perturb every int result a hidden fragment returns by ``delta``.

    Predicate fragments return bools and effect-only fragments' results
    are ignored, so the plant models a *value-computation* bug in the
    hidden evaluator."""
    original = HiddenServer.call

    def buggy_call(self, hid, label, values, access):
        result = original(self, hid, label, values, access)
        if type(result) is int:  # not bool: predicates must stay honest
            return result + delta
        return result

    HiddenServer.call = buggy_call
    try:
        yield
    finally:
        HiddenServer.call = original


@contextlib.contextmanager
def planted_stale_cache_bug():
    """Skip every cache invalidation: hidden-store writes no longer bump
    the cache epoch, so a cached read of a hidden global or field keeps
    being served after the store changed underneath it.  Cache-off runs
    execute every fragment for real and cannot be affected."""
    original = FragmentCache.invalidate

    def skip_invalidate(self, fn="", label=None):
        return None

    FragmentCache.invalidate = skip_invalidate
    try:
        yield
    finally:
        FragmentCache.invalidate = original


#: The stale-cache drill needs hidden *storage*.  Generated programs'
#: automatic selection only ever hides activation-local variables, whose
#: cache keys carry the read values themselves and so can never go stale;
#: the campaign therefore seeds a handcrafted globals-hiding program in
#: which a cacheable reader is called with an identical key before and
#: after a hidden-store write.
STALE_CACHE_GLOBAL = "secret"
STALE_CACHE_CANDIDATE = """\
global int secret = 3;

func int peek(int k) {
    return secret + k;
}

func void main(int k) {
    print(peek(k));
    secret = secret + k;
    print(peek(k));
}
"""
STALE_CACHE_ARG_SETS = ((2,), (5,))


class SelfCheckReport:
    """Outcome of one self-check run."""

    def __init__(self, plant="engine"):
        self.plant = plant
        self.caught = False
        self.seed = None
        self.programs_tried = 0
        self.divergences = []
        self.only_split_configs = False
        self.minimized = None
        self.minimized_lines = 0
        self.clean_without_bug = False
        self.arg_sets = []

    @property
    def passed(self):
        return (self.caught and self.only_split_configs
                and self.minimized is not None
                and self.clean_without_bug)


def _candidates(seed, max_programs, plant):
    """Yield ``(seed, source, arg_sets)`` campaign candidates."""
    if plant == "stale-cache":
        yield seed, STALE_CACHE_CANDIDATE, list(STALE_CACHE_ARG_SETS)
        return
    for s in range(seed, seed + max_programs):
        program, arg_sets = generate_program(s)
        yield s, pretty(program), arg_sets


def run_selfcheck(seed=0, max_programs=20, configs=None, plant="engine"):
    """Run the planted-bug drill; returns a :class:`SelfCheckReport`.

    ``plant`` picks the bug: ``"engine"`` perturbs hidden int results
    (any split configuration can catch it), ``"stale-cache"`` skips
    cache invalidation (only the cache-on cells can)."""
    if plant not in PLANTS:
        raise ValueError(
            "unknown plant %r (known: %s)" % (plant, ", ".join(PLANTS))
        )
    configs = tuple(configs) if configs else oracle.CONFIGS
    report = SelfCheckReport(plant=plant)
    stale = plant == "stale-cache"
    hide = STALE_CACHE_GLOBAL if stale else None
    planted = planted_stale_cache_bug if stale else planted_engine_bug
    source = None
    with planted():
        for s, candidate, arg_sets in _candidates(seed, max_programs, plant):
            result = oracle.run_matrix(candidate, arg_sets, configs=configs,
                                       hide=hide)
            report.programs_tried += 1
            if result.diverged:
                report.caught = True
                report.seed = s
                report.divergences = list(result.divergences)
                report.arg_sets = list(arg_sets)
                source = candidate
                break
        if not report.caught:
            return report
        if stale:
            # the stale read is a cache artefact: only cache-on cells
            # may be implicated
            cache_cells = {c.name for c in oracle.CONFIGS if c.cache}
            report.only_split_configs = all(
                d.config in cache_cells for d in report.divergences
            )
            fast = oracle.select_configs("split-cache")
        else:
            # the planted bug is hidden-side only: the unsplit compiled
            # run must not be implicated
            report.only_split_configs = all(
                d.config != "original-compiled" for d in report.divergences
            )
            fast = oracle.select_configs("split-compiled")
        # minimize against a single cheap in-process configuration,
        # anchored to behavioural (not accounting) divergence
        arg_sets = report.arg_sets

        def interesting(src):
            try:
                r = oracle.run_matrix(src, arg_sets, configs=fast, hide=hide)
            except Exception:  # a shrink that no longer parses/splits
                return False
            return any(d.kind in ("output", "value") for d in r.divergences)

        report.minimized = minimize(source, interesting)
        report.minimized_lines = report.minimized.count("\n")
    # outside the context: the repro must be clean on the honest engines
    clean = oracle.run_matrix(report.minimized, arg_sets, configs=configs,
                              hide=hide)
    report.clean_without_bug = not clean.diverged
    return report
