"""Harness self-check: plant a bug, prove the fuzzer catches it.

A differential fuzzer that has never caught anything is indistinguishable
from one that cannot.  ``repro fuzz --self-check`` injects a known
evaluator bug — every int-typed value a hidden fragment returns is off by
one (:func:`planted_engine_bug`) — runs a short campaign, and asserts:

* the oracle reports a divergence (and only in split configurations —
  the planted bug lives on the hidden side);
* the minimizer shrinks the diverging program to a small ``.mj`` repro;
* with the bug removed, the minimized repro is clean again.

The patch wraps :meth:`HiddenServer.call`, so it reaches every split
configuration: both engines, batching on or off, the in-process channel
and the real socket server (which executes fragments through the same
class).  The unsplit reference runs never touch the hidden server and
stay correct — exactly the shape of a real transformation bug.
"""

import contextlib

from repro.fuzz import oracle
from repro.fuzz.generate import generate_program
from repro.fuzz.reduce import minimize
from repro.lang.pretty import pretty
from repro.runtime.server import HiddenServer


@contextlib.contextmanager
def planted_engine_bug(delta=1):
    """Perturb every int result a hidden fragment returns by ``delta``.

    Predicate fragments return bools and effect-only fragments' results
    are ignored, so the plant models a *value-computation* bug in the
    hidden evaluator."""
    original = HiddenServer.call

    def buggy_call(self, hid, label, values, access):
        result = original(self, hid, label, values, access)
        if type(result) is int:  # not bool: predicates must stay honest
            return result + delta
        return result

    HiddenServer.call = buggy_call
    try:
        yield
    finally:
        HiddenServer.call = original


class SelfCheckReport:
    """Outcome of one self-check run."""

    def __init__(self):
        self.caught = False
        self.seed = None
        self.programs_tried = 0
        self.divergences = []
        self.only_split_configs = False
        self.minimized = None
        self.minimized_lines = 0
        self.clean_without_bug = False
        self.arg_sets = []

    @property
    def passed(self):
        return (self.caught and self.only_split_configs
                and self.minimized is not None
                and self.clean_without_bug)


def run_selfcheck(seed=0, max_programs=20, configs=None):
    """Run the planted-bug drill; returns a :class:`SelfCheckReport`."""
    configs = tuple(configs) if configs else oracle.CONFIGS
    report = SelfCheckReport()
    source = None
    with planted_engine_bug():
        for s in range(seed, seed + max_programs):
            program, arg_sets = generate_program(s)
            candidate = pretty(program)
            result = oracle.run_matrix(candidate, arg_sets, configs=configs)
            report.programs_tried += 1
            if result.diverged:
                report.caught = True
                report.seed = s
                report.divergences = list(result.divergences)
                report.arg_sets = list(arg_sets)
                source = candidate
                break
        if not report.caught:
            return report
        # the planted bug is hidden-side only: the unsplit compiled run
        # must not be implicated
        report.only_split_configs = all(
            d.config != "original-compiled" for d in report.divergences
        )
        # minimize against a single cheap in-process configuration,
        # anchored to behavioural (not accounting) divergence
        fast = oracle.select_configs("split-compiled")
        arg_sets = report.arg_sets

        def interesting(src):
            r = oracle.run_matrix(src, arg_sets, configs=fast)
            return any(d.kind in ("output", "value") for d in r.divergences)

        report.minimized = minimize(source, interesting)
        report.minimized_lines = report.minimized.count("\n")
    # outside the context: the repro must be clean on the honest engines
    clean = oracle.run_matrix(report.minimized, arg_sets, configs=configs)
    report.clean_without_bug = not clean.diverged
    return report
