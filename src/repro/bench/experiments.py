"""One entry point per table/figure of the paper.

Every function returns an object with structured ``data`` plus a rendered
text table matching the paper's layout, so benchmarks can both assert on
shapes and print the reproduction next to the paper's numbers.
"""

import threading
from functools import lru_cache

from repro import obs
from repro.analysis.selfcontained import analyze_self_contained
from repro.attack.driver import attack_split_program
from repro.bench import paperexamples
from repro.bench.tables import Table
from repro.core.pipeline import auto_split
from repro.core.program import split_program
from repro.lang import check_program, parse_program
from repro.runtime.channel import M_ROUND_TRIPS, M_SIM_MS, LatencyModel
from repro.runtime import DEFAULT_ENGINE
from repro.runtime.interpreter import M_STEPS
from repro.runtime.splitrun import check_equivalence, run_original, run_split
from repro.security.lattice import CType, VARYING
from repro.security.report import analyze_split_security
from repro.workloads.corpora import SPECS, build_corpus
from repro.workloads.inputs import TABLE5_RUNS

#: the paper's Table 1 column order and Table 2 row order
TABLE1_ORDER = ["jfig", "jess", "bloat", "javac", "jasmin"]
TABLE2_ORDER = ["javac", "jess", "jasmin", "bloat", "jfig"]

#: paper values for side-by-side comparison
PAPER_TABLE1 = {
    "jfig": (2987, 21, 6, 0),
    "jess": (1622, 6, 6, 0),
    "bloat": (3839, 35, 9, 1),
    "javac": (1898, 16, 8, 8),
    "jasmin": (645, 7, 5, 3),
}
PAPER_TABLE2 = {
    "javac": (7, 168, 67),
    "jess": (11, 192, 57),
    "jasmin": (6, 47, 31),
    "bloat": (16, 161, 99),
    "jfig": (17, 583, 160),
}
PAPER_TABLE3 = {
    # constant, linear, polynomial, rational, arbitrary, inputs, degree
    "javac": (5, 38, 1, 0, 23, "varying", 2),
    "jess": (8, 13, 2, 0, 34, 4, 2),
    "jasmin": (3, 15, 1, 0, 12, 4, 2),
    "bloat": (25, 22, 12, 0, 40, 5, 2),
    "jfig": (8, 62, 23, 31, 36, 7, 6),
}
PAPER_TABLE4 = {
    # paths=variable, predicates=hidden, flow=hidden
    "javac": (3, 42, 35),
    "jess": (0, 28, 16),
    "jasmin": (0, 16, 12),
    "bloat": (0, 63, 49),
    "jfig": (15, 105, 63),
}

#: latency calibrated to the paper's 2003 LAN setting relative to the
#: interpreter's 1us/statement cost model (ratio ~1400 statements per
#: round trip).
TABLE5_LATENCY = LatencyModel(per_message_ms=1.4, per_value_us=20.0)


class ExperimentResult:
    """Structured data plus a rendered table."""

    def __init__(self, name, data, table):
        self.name = name
        self.data = data
        self.table = table

    def render(self):
        return self.table.render() if isinstance(self.table, Table) else str(self.table)

    def __repr__(self):
        return "<ExperimentResult %s>" % self.name


@lru_cache(maxsize=None)
def _corpus(name, scale):
    return build_corpus(name, scale=scale)


@lru_cache(maxsize=None)
def split_corpus(name, scale=1.0):
    """Split one corpus with the paper's full selection pipeline."""
    corpus = _corpus(name, scale)
    return auto_split(corpus.program, corpus.checker)


@lru_cache(maxsize=None)
def _security_report(name, scale=1.0):
    corpus = _corpus(name, scale)
    return analyze_split_security(split_corpus(name, scale), corpus.checker, name)


# -- Table 1 -----------------------------------------------------------------


def run_table1(scale=1.0):
    """Opportunities for constructing hidden components from whole methods."""
    table = Table(
        "Table 1: self-contained methods (ours vs paper in parentheses)",
        ["Metric"] + TABLE1_ORDER,
    )
    data = {}
    reports = {}
    for name in TABLE1_ORDER:
        corpus = _corpus(name, scale)
        reports[name] = analyze_self_contained(corpus.program, name)
        data[name] = (
            reports[name].total,
            len(reports[name].self_contained),
            len(reports[name].large),
            len(reports[name].non_initializer),
        )
    labels = [
        "Number of Methods",
        "Self-contained Methods",
        "Self-contained > 10",
        "Excluding Initializers",
    ]
    for i, label in enumerate(labels):
        cells = [label]
        for name in TABLE1_ORDER:
            cells.append("%d (%d)" % (data[name][i], PAPER_TABLE1[name][i]))
        table.add_row(*cells)
    return ExperimentResult("table1", data, table)


# -- Table 2 -----------------------------------------------------------------


def run_table2(scale=1.0):
    """Split characteristics: methods sliced / statements in slice / ILPs."""
    table = Table(
        "Table 2: split characteristics (ours vs paper in parentheses)",
        ["Benchmark", "Methods Sliced", "Statements in Slice", "ILPs"],
    )
    data = {}
    for name in TABLE2_ORDER:
        sp = split_corpus(name, scale)
        row = (sp.methods_sliced(), sp.statements_in_slices(), sp.ilp_count())
        data[name] = row
        paper = PAPER_TABLE2[name]
        table.add_row(
            name,
            "%d (%d)" % (row[0], paper[0]),
            "%d (%d)" % (row[1], paper[1]),
            "%d (%d)" % (row[2], paper[2]),
        )
    return ExperimentResult("table2", data, table)


# -- Table 3 -----------------------------------------------------------------


def run_table3(scale=1.0):
    """Arithmetic complexity of ILPs."""
    table = Table(
        "Table 3: arithmetic complexity of ILPs (ours vs paper in parentheses)",
        [
            "Benchmark",
            "Constant",
            "Linear",
            "Polynomial",
            "Rational",
            "Arbitrary",
            "Inputs(max)",
            "Degree(max)",
        ],
    )
    data = {}
    for name in TABLE2_ORDER:
        report = _security_report(name, scale)
        hist = report.type_histogram()
        inputs = report.max_inputs()
        degree = report.max_degree()
        data[name] = (hist, inputs, degree)
        paper = PAPER_TABLE3[name]
        table.add_row(
            name,
            "%d (%d)" % (hist[CType.CONSTANT], paper[0]),
            "%d (%d)" % (hist[CType.LINEAR], paper[1]),
            "%d (%d)" % (hist[CType.POLYNOMIAL], paper[2]),
            "%d (%d)" % (hist[CType.RATIONAL], paper[3]),
            "%d (%d)" % (hist[CType.ARBITRARY], paper[4]),
            "%s (%s)" % (inputs, paper[5]),
            "%s (%s)" % (degree, paper[6]),
        )
    return ExperimentResult("table3", data, table)


# -- Table 4 -----------------------------------------------------------------


def run_table4(scale=1.0):
    """Control flow complexity of ILPs."""
    table = Table(
        "Table 4: control flow complexity of ILPs (ours vs paper in parentheses)",
        ["Benchmark", "Paths = variable", "Predicates = hidden", "Flow = hidden"],
    )
    data = {}
    for name in TABLE2_ORDER:
        report = _security_report(name, scale)
        row = (
            report.paths_variable_count(),
            report.predicates_hidden_count(),
            report.flow_hidden_count(),
        )
        data[name] = row
        paper = PAPER_TABLE4[name]
        table.add_row(
            name,
            "%d (%d)" % (row[0], paper[0]),
            "%d (%d)" % (row[1], paper[1]),
            "%d (%d)" % (row[2], paper[2]),
        )
    return ExperimentResult("table4", data, table)


# -- Table 5 -----------------------------------------------------------------


def run_table5(scale=1.0, latency=None, runs=None, batching=False,
               engine=DEFAULT_ENGINE):
    """Runtime overhead caused by software splitting.

    Executes each paper row's driver invocation on both the original and
    split corpus and reports component interactions and simulated runtimes.
    Channel and step numbers come from the telemetry registry
    (:mod:`repro.obs`) — each run executes under a scoped registry whose
    counters replace the old hand-rolled accounting.

    ``batching=True`` runs the split side with the communication
    optimisation layer on (send coalescing + callback batching,
    docs/PROTOCOL.md and docs/BENCHMARKS.md); the default reproduces the
    paper's one-message-per-interaction channel exactly.
    """
    latency = latency or TABLE5_LATENCY
    runs = runs if runs is not None else TABLE5_RUNS
    table = Table(
        "Table 5: runtime overhead (simulated; paper %increase in parentheses)",
        [
            "Benchmark",
            "Input",
            "Interactions",
            "Before (ms)",
            "After (ms)",
            "% Increase",
            "Paper %",
        ],
    )
    data = []
    for run in runs:
        corpus = _corpus(run.benchmark, scale)
        sp = split_corpus(run.benchmark, scale)
        args = (run.n, run.m)
        with obs.telemetry() as (reg_before, _tracer):
            before = run_original(corpus.program, args=args, engine=engine)
        with obs.telemetry() as (reg_after, _tracer):
            after = run_split(sp, args=args, latency=latency, record=False,
                              batching=batching, engine=engine)
        if before.output != after.output:
            raise AssertionError(
                "split %s diverged on %s" % (run.benchmark, run.input_name)
            )
        before_steps = reg_before.value(M_STEPS, side="open")
        open_steps = reg_after.value(M_STEPS, side="open")
        hidden_steps = reg_after.value(M_STEPS, side="hidden")
        channel_ms = reg_after.value(M_SIM_MS)
        interactions = int(reg_after.total(M_ROUND_TRIPS))
        # Per-row statement cost calibrated so the simulated baseline equals
        # the paper's: one interpreted statement stands for a fixed number
        # of real ones (see repro.workloads.inputs).
        stmt_cost_us = run.paper_before_s * 1e6 / before_steps
        before_ms = before_steps * stmt_cost_us / 1000.0
        after_ms = (
            open_steps * stmt_cost_us / 1000.0
            + hidden_steps * stmt_cost_us / 1000.0
            + channel_ms
        )
        pct = 100.0 * (after_ms - before_ms) / before_ms
        data.append(
            {
                "benchmark": run.benchmark,
                "input": run.input_name,
                "interactions": interactions,
                "before_ms": before_ms,
                "after_ms": after_ms,
                "increase_pct": pct,
                "paper_pct": run.paper_increase_pct,
            }
        )
        table.add_row(
            run.benchmark,
            run.input_name,
            interactions,
            "%.1f" % before_ms,
            "%.1f" % after_ms,
            "%.0f%%" % pct,
            "%.0f%%" % run.paper_increase_pct,
        )
    return ExperimentResult("table5", data, table)


# -- Round-trip latency attribution (the wire behind Table 5) ----------------


def run_rt_attribution(scale=0.3, runs=None):
    """Where the real wire time goes, per Table 5 corpus.

    Table 5's overhead numbers are simulated; this experiment runs each
    corpus once against an actual TCP-served hidden component with
    distributed tracing on (``--trace``, docs/OBSERVABILITY.md) and
    decomposes the measured round trips into serialize / wire / exec /
    deser.  The "Explained" column is the share of the measured wall time
    the four phases account for — 100% up to rounding, by construction.
    """
    from repro.obs import traceview
    from repro.obs.events import FlightRecorder
    from repro.runtime.remote import remote_server, run_split_remote

    runs = runs if runs is not None else TABLE5_RUNS
    picked = []
    for run in runs:  # first driver invocation of each benchmark
        if all(p.benchmark != run.benchmark for p in picked):
            picked.append(run)
    table = Table(
        "Round-trip latency attribution over the wire (us, share of wall)",
        ["Benchmark", "Round trips", "Wall (us)", "serialize", "wire",
         "exec", "deser", "Explained"],
    )
    data = {}
    for run in picked:
        sp = split_corpus(run.benchmark, scale)
        recorder = FlightRecorder(process="Of")
        with remote_server(sp) as address:
            # telemetry scoped to the client only: the server thread was
            # created outside, so its events stay out of this recorder
            with obs.telemetry(recorder=recorder):
                run_split_remote(sp, address, args=(run.n, run.m),
                                 trace=True)
        report = traceview.attribution(list(recorder.events))
        overall = report["overall"]
        data[run.benchmark] = report
        total = overall["total_us"] or 1.0
        cells = [run.benchmark, overall["round_trips"],
                 "%.1f" % overall["total_us"]]
        for phase in ("serialize", "wire", "exec", "deser"):
            us = overall["phases_us"][phase]
            cells.append("%.1f (%.0f%%)" % (us, 100.0 * us / total))
        cells.append("%.2f%%" % overall["coverage_pct"])
        table.add_row(*cells)
    return ExperimentResult("rtattr", data, table)


# -- Concurrent load against the multi-tenant daemon -------------------------


def run_loadgen_experiment(scale=0.3, clients_total=100, iterations=1,
                           runs=None):
    """Concurrent load against ONE daemon serving every Table 5 corpus.

    Each corpus becomes a tenant of a single multi-tenant daemon
    (docs/OPERATIONS.md); its session shape comes from a simulated run's
    transcript (the same extraction ``repro loadgen`` applies to a
    ``--log-events`` file).  ``clients_total`` synthetic clients — split
    evenly across the tenants, all fleets offered concurrently — replay
    those shapes over real TCP, and the table reports per-tenant
    throughput and exact p50/p95/p99 round-trip latency.
    """
    from repro.loadgen import run_loadgen
    from repro.loadgen.replay import script_from_transcript
    from repro.runtime.remote import remote_server
    from repro.runtime.server import Tenant

    runs = runs if runs is not None else TABLE5_RUNS
    picked = []
    for run in runs:  # first driver invocation of each benchmark
        if all(p.benchmark != run.benchmark for p in picked):
            picked.append(run)
    tenants, scripts = [], {}
    for run in picked:
        sp = split_corpus(run.benchmark, scale)
        tenants.append(Tenant.from_program(run.benchmark, sp))
        scripts[run.benchmark] = script_from_transcript(
            run_split(sp, args=(run.n, run.m)).channel.transcript
        )
    per_tenant = max(1, clients_total // len(picked))
    reports = {}
    with remote_server(tenants=tenants) as address:
        def fleet(name):
            reports[name] = run_loadgen(
                address, scripts[name], clients=per_tenant,
                iterations=iterations, program=name,
            )
        threads = [threading.Thread(target=fleet, args=(run.benchmark,))
                   for run in picked]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    table = Table(
        "Concurrent load: %d clients against one %d-tenant daemon"
        % (per_tenant * len(picked), len(picked)),
        ["Tenant", "Clients", "Ops", "Ops/s", "p50 (ms)", "p95 (ms)",
         "p99 (ms)", "Errors"],
    )
    for run in picked:
        report = reports[run.benchmark]
        lat = report["latency_ms"]
        errors = sum(report["errors"].values())
        table.add_row(
            run.benchmark, report["clients"], report["ops"],
            "%.0f" % report["throughput_ops_s"],
            "%.2f" % lat["p50"], "%.2f" % lat["p95"], "%.2f" % lat["p99"],
            errors,
        )
    data = {
        "scale": scale,
        "clients_total": per_tenant * len(picked),
        "tenants": [run.benchmark for run in picked],
        "reports": reports,
    }
    return ExperimentResult("loadgen", data, table)


# -- Fragment result cache over the corpora -----------------------------------


def _observable_tuple(result):
    """Everything a run exposes: value, output, steps, full transcript."""
    events = []
    if result.channel is not None and result.channel.transcript is not None:
        events = [
            (e.seq, e.kind, e.hid, e.fn_name, e.label, e.sent, e.result)
            for e in result.channel.transcript.events
        ]
    return (result.value, tuple(result.output), result.steps_open,
            result.steps_hidden, result.interactions, events)


def run_cache_experiment(scale=0.3, clients=4, iterations=6, engines=None,
                         output=None, runs=None):
    """Transparency and payoff of the fragment result cache (docs/CACHING.md).

    Two parts, one document (``BENCH_cache.json``, gated by
    ``tools/check_cache.py``):

    * **equivalence** — every Table 5 corpus x every engine, ``cache=True``
      against ``cache=False`` through :func:`run_split`: return value,
      output, both step counts, and the full channel transcript must be
      bit-identical (the gate is 0 divergences);
    * **replay** — a repeat-heavy loadgen replay (``iterations`` script
      repetitions per client, each over one connection and therefore one
      warm session cache) of every corpus against a caching daemon,
      reporting per-tenant hit rates, the fragment executions the cache
      saved, and wall/CPU deltas against an identical uncached run.
    """
    import json
    import time

    from repro.loadgen import run_loadgen
    from repro.loadgen.replay import script_from_transcript
    from repro.runtime import ENGINES
    from repro.runtime.remote import HiddenComponentServer
    from repro.runtime.server import Tenant

    engines = list(engines) if engines else list(ENGINES)
    runs = runs if runs is not None else TABLE5_RUNS
    picked = []
    for run in runs:  # first driver invocation of each benchmark
        if all(p.benchmark != run.benchmark for p in picked):
            picked.append(run)

    # part 1: bit-identity of cache on vs off, corpus x engine
    divergences = 0
    equivalence = {}
    scripts = {}
    for run in picked:
        sp = split_corpus(run.benchmark, scale)
        cells = equivalence.setdefault(run.benchmark, {})
        for engine in engines:
            off = run_split(sp, args=(run.n, run.m),
                            latency=LatencyModel.instant(), engine=engine)
            on = run_split(sp, args=(run.n, run.m),
                           latency=LatencyModel.instant(), engine=engine,
                           cache=True)
            identical = _observable_tuple(off) == _observable_tuple(on)
            cells[engine] = {"identical": identical,
                             "interactions": off.interactions}
            if not identical:
                divergences += 1
            if engine == DEFAULT_ENGINE:
                scripts[run.benchmark] = script_from_transcript(
                    off.channel.transcript)

    # part 2: repeat-heavy replay against a caching vs a plain daemon
    def replay(cache_on):
        tenants = [
            Tenant.from_program(run.benchmark,
                                split_corpus(run.benchmark, scale))
            for run in picked
        ]
        server = HiddenComponentServer(tenants=tenants, cache=cache_on)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        reports = {}
        wall0, cpu0 = time.perf_counter(), time.process_time()
        try:
            # sequential fleets: the CPU delta should reflect caching,
            # not cross-tenant scheduling noise
            for run in picked:
                reports[run.benchmark] = run_loadgen(
                    server.address, scripts[run.benchmark], clients=clients,
                    iterations=iterations, program=run.benchmark,
                    cache=cache_on)
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            # session teardown (which folds per-session cache stats into
            # server.cache_stats) runs on the daemon's session threads;
            # give the folds a moment to settle
            def total():
                return sum(sum(s.values())
                           for s in server.cache_stats.values())
            deadline = time.perf_counter() + 2.0
            last = -1
            while time.perf_counter() < deadline and total() != last:
                last = total()
                time.sleep(0.05)
        finally:
            server.shutdown()
            thread.join(timeout=2.0)
        return reports, dict(server.cache_stats), wall, cpu

    reports_off, _stats_off, wall_off, cpu_off = replay(False)
    reports_on, stats_on, wall_on, cpu_on = replay(True)

    table = Table(
        "Fragment result cache: %d clients x %d iterations per corpus"
        % (clients, iterations),
        ["Tenant", "Calls", "Hits", "Hit rate", "Execs off", "Execs on",
         "Saved"],
    )
    tenants_data = {}
    for run in picked:
        name = run.benchmark
        stats = stats_on.get(name, {})
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        probes = hits + misses
        calls_off = reports_off[name]["op_counts"].get("call", 0)
        calls_on = reports_on[name]["op_counts"].get("call", 0)
        execs_on = calls_on - hits
        hit_rate = hits / probes if probes else 0.0
        tenants_data[name] = {
            "calls": calls_on,
            "hits": hits,
            "misses": misses,
            "evictions": stats.get("evictions", 0),
            "invalidations": stats.get("invalidations", 0),
            "hit_rate": round(hit_rate, 4),
            "fragment_executions": {"off": calls_off, "on": execs_on},
            "errors": {
                "off": sum(reports_off[name]["errors"].values()),
                "on": sum(reports_on[name]["errors"].values()),
            },
            "latency_ms": {
                "off": reports_off[name]["latency_ms"],
                "on": reports_on[name]["latency_ms"],
            },
        }
        table.add_row(
            name, calls_on, hits, "%.0f%%" % (100.0 * hit_rate),
            calls_off, execs_on, calls_off - execs_on,
        )
    data = {
        "scale": scale,
        "clients": clients,
        "iterations": iterations,
        "engines": engines,
        "divergences": divergences,
        "equivalence": equivalence,
        "tenants": tenants_data,
        "totals": {
            "wall_s": {"off": round(wall_off, 4), "on": round(wall_on, 4)},
            "cpu_s": {"off": round(cpu_off, 4), "on": round(cpu_on, 4)},
        },
    }
    if output:
        with open(output, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
    return ExperimentResult("cache", data, table)


# -- Continuous profiling over the corpora ------------------------------------


def run_profile_experiment(scale=0.3, interval_ms=1.0, min_duration_s=1.2,
                           engines=None, output=None, runs=None):
    """Sample every Table 5 corpus per engine and attribute the time.

    Each cell runs the split corpus under the stack sampler
    (:mod:`repro.obs.profile`), repeating the run until ``min_duration_s``
    of wall time was sampled, and records how much of it the frame-tag
    registry could attribute to ``(fn/fragment, engine, side)`` rows plus
    the codegen deopt attribution.  ``output`` writes the machine-readable
    document (``BENCH_profile.json``, gated by ``tools/check_profile.py``:
    >=95% attribution everywhere, zero codegen deopts).
    """
    import json

    from repro.obs import profile as profmod
    from repro.obs.events import FlightRecorder
    from repro.runtime import ENGINES

    engines = list(engines) if engines else list(ENGINES)
    runs = runs if runs is not None else TABLE5_RUNS
    picked = []
    for run in runs:  # first driver invocation of each benchmark
        if all(p.benchmark != run.benchmark for p in picked):
            picked.append(run)
    table = Table(
        "Continuous profiling: sample attribution per corpus and engine",
        ["Benchmark", "Engine", "Samples", "Attributed", "Hottest (self)",
         "Deopts"],
    )
    corpora = {}
    for run in picked:
        sp = split_corpus(run.benchmark, scale)
        cells = corpora.setdefault(run.benchmark, {})
        for engine in engines:
            recorder = FlightRecorder()
            runs_done = 0
            with obs.telemetry(recorder=recorder) as (registry, _tracer):
                sampler = profmod.StackSampler(
                    interval_s=interval_ms / 1000.0)
                with sampler:
                    while True:
                        run_split(sp, args=(run.n, run.m),
                                  latency=LatencyModel.instant(),
                                  engine=engine)
                        runs_done += 1
                        if sampler.elapsed_s() >= min_duration_s:
                            break
                deopts = profmod.deopt_report(registry, recorder)
            prof = sampler.result
            doc = prof.to_dict()
            cells[engine] = {
                "samples": doc["samples"],
                "attributed": doc["attributed"],
                "attributed_pct": doc["attributed_pct"],
                "duration_s": doc["duration_s"],
                "runs": runs_done,
                "top": doc["rows"][:5],
                "deopts": deopts,
            }
            hottest = doc["rows"][0] if doc["rows"] else None
            table.add_row(
                run.benchmark, engine, doc["samples"],
                "%.1f%%" % doc["attributed_pct"],
                "%s (%s, %.0f%%)" % (
                    hottest["fn"], hottest["side"], hottest["self_pct"]
                ) if hottest else "-",
                deopts["total"],
            )
    data = {
        "scale": scale,
        "interval_ms": interval_ms,
        "min_duration_s": min_duration_s,
        "engines": engines,
        "corpora": corpora,
    }
    if output:
        with open(output, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
    return ExperimentResult("profile", data, table)


# -- Figures -----------------------------------------------------------------


def _fig_setup(source, fn_name, var):
    program = parse_program(source)
    checker = check_program(program)
    sp = split_program(program, checker, [(fn_name, var)])
    return program, checker, sp


def run_fig2_experiment(engine=DEFAULT_ENGINE):
    """The paper's worked splitting example (Fig. 2)."""
    program, checker, sp = _fig_setup(
        paperexamples.FIG2_SOURCE, paperexamples.FIG2_FUNCTION, paperexamples.FIG2_VARIABLE
    )
    with obs.telemetry() as (registry, _tracer):
        before, after = check_equivalence(program, sp, engine=engine)
    report = analyze_split_security(sp, checker, "fig2")
    table = Table(
        "Fig. 2: splitting f on variable a",
        ["ILP", "kind", "AC", "CC"],
    )
    for c in report.complexities:
        table.add_row(str(c.ilp), c.ilp.kind, str(c.ac), str(c.cc))
    data = {
        "split": sp,
        "complexities": report.complexities,
        "interactions": int(registry.total(M_ROUND_TRIPS)),
        "ilp_count": len(sp.splits[paperexamples.FIG2_FUNCTION].ilps),
    }
    return ExperimentResult("fig2", data, table)


def run_fig3_experiment(engine=DEFAULT_ENGINE):
    """The estimator example (Fig. 3): definite leaks and the RAISE rule."""
    program, checker, sp = _fig_setup(
        paperexamples.FIG3_SOURCE, paperexamples.FIG3_FUNCTION, paperexamples.FIG3_VARIABLE
    )
    check_equivalence(program, sp, engine=engine)
    report = analyze_split_security(sp, checker, "fig3")
    table = Table(
        "Fig. 3: complexity estimation on the modified example",
        ["ILP", "kind", "AC", "CC"],
    )
    for c in report.complexities:
        table.add_row(str(c.ilp), c.ilp.kind, str(c.ac), str(c.cc))
    return ExperimentResult("fig3", {"complexities": report.complexities}, table)


# -- Attack ------------------------------------------------------------------


def run_attack_experiment(n_runs=60, seed=7):
    """Section 3's recovery-feasibility argument, executed: attack every ILP
    of the Fig. 2 program and correlate outcomes with complexity class."""
    import random

    program, checker, sp = _fig_setup(
        paperexamples.FIG2_SOURCE, paperexamples.FIG2_FUNCTION, paperexamples.FIG2_VARIABLE
    )
    report = analyze_split_security(sp, checker, "fig2")
    ac_by_label = {}
    for c in report.complexities:
        ac_by_label.setdefault(c.ilp.label, c.ac)

    # drive `run` directly with random inputs for a rich observation pool
    rng = random.Random(seed)
    runs = [
        (rng.randint(0, 9), rng.randint(0, 9), rng.randint(5, 40), rng.randint(0, 60))
        for _ in range(n_runs)
    ]
    outcomes = attack_split_program(sp, runs, entry="run")

    table = Table(
        "Attack outcomes per ILP (Section 3, practical limitations)",
        ["Fragment", "AC", "Outcome", "Technique", "Samples"],
    )
    data = []
    for (fn_name, label), outcome in sorted(outcomes.items()):
        ac = ac_by_label.get(label)
        win = outcome.winning
        table.add_row(
            "%s#%d" % (fn_name, label),
            str(ac) if ac else "-",
            "BROKEN" if outcome.broken else "resisted",
            win.technique if win else "-",
            win.samples_used if win else len(outcome.trace),
        )
        data.append({"label": label, "ac": ac, "outcome": outcome})
    return ExperimentResult("attack", data, table)
