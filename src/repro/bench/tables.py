"""Plain-text table rendering in the paper's layouts."""


class Table:
    """A simple column-aligned text table."""

    def __init__(self, title, headers):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add_row(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                "expected %d cells, got %d" % (len(self.headers), len(cells))
            )
        self.rows.append([str(c) for c in cells])

    def render(self):
        return format_table(self.title, self.headers, self.rows)

    def __str__(self):
        return self.render()


def format_table(title, headers, rows):
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title), line(headers), sep]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
