"""``python -m repro.bench`` — regenerate every table and figure in one go.

Options::

    python -m repro.bench                 # all experiments, full scale
    python -m repro.bench --scale 0.1     # smaller corpora (quick look)
    python -m repro.bench table3 fig2     # a subset
"""

import argparse
import sys
import time

from repro.bench import experiments
from repro.runtime import DEFAULT_ENGINE, ENGINES


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.bench")
    parser.add_argument(
        "names",
        nargs="*",
        help="which experiments (table1..table5, rtattr, loadgen, profile, "
        "cache, fig2, fig3, attack); default all",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--engine", choices=list(ENGINES), default=DEFAULT_ENGINE,
        help="execution engine for the runtime experiments "
        "(table5, fig2, fig3); see docs/ENGINE.md",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="write the 'profile' or 'cache' experiment's machine-readable "
        "document here (BENCH_profile.json / BENCH_cache.json, gated by "
        "tools/check_profile.py / tools/check_cache.py)",
    )
    args = parser.parse_args(argv)

    runners = {
        "table1": lambda: experiments.run_table1(scale=args.scale),
        "table2": lambda: experiments.run_table2(scale=args.scale),
        "table3": lambda: experiments.run_table3(scale=args.scale),
        "table4": lambda: experiments.run_table4(scale=args.scale),
        "table5": lambda: experiments.run_table5(scale=args.scale,
                                                 engine=args.engine),
        "rtattr": lambda: experiments.run_rt_attribution(scale=args.scale),
        "loadgen": lambda: experiments.run_loadgen_experiment(
            scale=min(args.scale, 0.3)),
        "profile": lambda: experiments.run_profile_experiment(
            scale=min(args.scale, 0.3), output=args.output),
        "cache": lambda: experiments.run_cache_experiment(
            scale=min(args.scale, 0.3), output=args.output),
        "fig2": lambda: experiments.run_fig2_experiment(engine=args.engine),
        "fig3": lambda: experiments.run_fig3_experiment(engine=args.engine),
        "attack": experiments.run_attack_experiment,
    }
    names = args.names or list(runners)
    unknown = [n for n in names if n not in runners]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))

    for name in names:
        started = time.perf_counter()
        result = runners[name]()
        print(result.render())
        print("[%s regenerated in %.1fs]" % (name, time.perf_counter() - started))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
