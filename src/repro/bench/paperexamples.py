"""Canonical reconstructions of the paper's worked examples.

Fig. 2's transformed code is only shown graphically in the paper, but its
ILP complexity characterisation pins the code down: ILP (4) is

    f_ILP = sum + sum_{i=3x+y}^{z-1} i        AC = <Polynomial, 4, 2>
                                              CC = <variable, hidden, hidden>

i.e. ``a = 3x + y`` seeds a hidden counted loop ``i = a; while (i < z)``
accumulating into ``sum``, whose initial value arrives from the open side.
``FIG2_SOURCE`` reproduces exactly that: splitting ``f`` on ``a`` yields
four ILPs — the array-store leak, the hidden branch predicate, the
then-branch store, and the return — with the return ILP measuring
``<Polynomial, 4, 2>`` / ``<variable, hidden, hidden>``.

``FIG3_SOURCE`` is the paper's "slightly modified version": ``B[0] = a``
*definitely leaks* the hidden definition ``a = 3x + y`` (the estimator's
``LeakedDefn`` rule), so that ILP reports the complexity of the defining
expression (Linear in x, y) and downstream values may treat ``a`` as
observable.
"""

FIG2_SOURCE = """
func int f(int x, int y, int z, int[] B) {
    int a;
    int i;
    int sum;
    sum = B[0];
    a = 3 * x + y;
    B[1] = a + 1;
    i = a;
    while (i < z) {
        sum = sum + i;
        i = i + 1;
    }
    if (sum > 100) {
        sum = sum - 100;
        B[2] = sum / 2;
    } else {
        B[2] = 0;
    }
    return sum;
}

func int run(int x, int y, int z, int s0) {
    int[] B = new int[8];
    B[0] = s0;
    int r = f(x, y, z, B);
    print(B[1]);
    print(B[2]);
    return r;
}

func void main() {
    print(run(2, 3, 20, 7));
    print(run(1, 1, 9, 3));
    print(run(4, 0, 40, 120));
}
"""

FIG2_FUNCTION = "f"
FIG2_VARIABLE = "a"

FIG3_SOURCE = """
func int g(int x, int y, int z, int[] B) {
    int a;
    int i;
    int sum;
    sum = B[3];
    a = 3 * x + y;
    B[0] = a;
    i = a;
    while (i < z) {
        sum = sum + i;
        i = i + 1;
    }
    B[1] = sum;
    return sum;
}

func void main() {
    int[] B = new int[8];
    B[3] = 5;
    print(g(2, 3, 25, B));
    print(B[0]);
    print(B[1]);
}
"""

FIG3_FUNCTION = "g"
FIG3_VARIABLE = "a"
