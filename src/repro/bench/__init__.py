"""Experiment harness: one entry point per table/figure of the paper, plus
text-table rendering that mirrors the paper's layouts.  The ``benchmarks/``
directory wraps these in pytest-benchmark targets."""

from repro.bench.tables import Table, format_table
from repro.bench.experiments import (
    run_attack_experiment,
    run_fig2_experiment,
    run_fig3_experiment,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    split_corpus,
)

__all__ = [
    "Table",
    "format_table",
    "run_attack_experiment",
    "run_fig2_experiment",
    "run_fig3_experiment",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "split_corpus",
]
