"""Split-candidate function templates.

Each template emits a function whose forward slice exercises a particular
corner of the splitting transformation and lands in a particular arithmetic
complexity class, so corpora can be mixed to reproduce the per-program ILP
flavour of Tables 3 and 4:

======================  ============================================
template                dominant ILP complexity
======================  ============================================
accumulator_loop        Polynomial (hidden counted loop, RAISE rule)
table_walker            Linear with *varying* inputs (javac case)
poly_mixer              Polynomial, small degree
float_curve             Polynomial, high degree + hidden float loop (jfig)
rational_blend          Rational (jfig)
branch_cascade          Arbitrary (hidden predicates, hidden branch flow)
const_config            Constant (bloat's config flags)
mod_scrambler           Arbitrary (mod arithmetic)
linear_chain            Linear, with a fully hidden branch
======================  ============================================

All templates take scalar parameters plus scratch arrays ``A`` (input) and
``B``/``F`` (output) and return a scalar, so drivers can call them
uniformly.  Sizes are randomised in a small band per template so corpora
are not copy-paste identical, while keeping the Table 2 totals stable.
"""

from repro.lang import builders as b


def _hidden_balance_branch(var, threshold):
    """A small fully hideable if-then-else (both clauses case (i)): moves to
    Hf whole, contributing hidden predicates AND hidden flow (Table 4)."""
    return b.if_(
        b.gt(var, threshold),
        [b.assign(var, b.sub(var, threshold))],
        [b.assign(var, b.add(var, 1))],
    )


def accumulator_loop(name, rng):
    """Fig. 2 of the paper: linear seed, hidden counted loop accumulating
    into ``sum``, branch adjusting it, leaks via array stores and return."""
    c1 = rng.randint(2, 7)
    c2 = rng.randint(1, 5)
    threshold = rng.randint(50, 200)
    return b.func(
        name,
        [("int", "x"), ("int", "y"), ("int", "z"), ("int[]", "A"), ("int[]", "B")],
        "int",
        [
            b.decl("int", "a"),
            b.decl("int", "i"),
            b.decl("int", "sum"),
            b.decl("int", "bias"),
            b.assign("sum", b.index("B", 0)),
            b.assign("a", b.add(b.mul(c1, "x"), b.mul(c2, "y"))),
            b.assign("bias", b.add("a", c2)),
            b.assign("i", "a"),
            b.while_(
                b.lt("i", "z"),
                [
                    b.assign("sum", b.add("sum", "i")),
                    b.assign("i", b.add("i", 1)),
                ],
            ),
            _hidden_balance_branch("bias", threshold // 2),
            b.assign(b.index("B", 2), b.add("bias", "x")),
            b.if_(
                b.gt("sum", threshold),
                [
                    b.assign("sum", b.sub("sum", threshold)),
                    b.assign(b.index("B", 1), b.div("sum", 2)),
                ],
                [b.assign(b.index("B", 1), 0)],
            ),
            b.ret("sum"),
        ],
    )


def table_walker(name, rng):
    """javac-style: the hidden loop reads a different array element per
    iteration — the estimator reports *varying* inputs."""
    step = rng.randint(1, 3)
    return b.func(
        name,
        [("int", "x"), ("int", "n"), ("int[]", "A"), ("int[]", "B")],
        "int",
        [
            b.decl("int", "acc"),
            b.decl("int", "j"),
            b.decl("int", "peak"),
            b.assign("acc", b.add("x", rng.randint(1, 9))),
            b.assign("peak", b.mul("acc", 2)),
            b.assign("j", 0),
            b.while_(
                b.lt("j", "n"),
                [
                    b.assign("acc", b.add("acc", b.index("A", "j"))),
                    b.assign("j", b.add("j", step)),
                ],
            ),
            _hidden_balance_branch("peak", rng.randint(10, 40)),
            b.assign(b.index("B", 0), "acc"),
            b.assign(b.index("B", 1), b.add("peak", "n")),
            b.assign(b.index("B", 2), b.sub("acc", "x")),
            b.ret(b.add("acc", "x")),
        ],
    )


def poly_mixer(name, rng):
    """Products of hidden scalars: Polynomial ILPs of modest degree."""
    c = rng.randint(2, 9)
    return b.func(
        name,
        [("int", "x"), ("int", "y"), ("int[]", "B")],
        "int",
        [
            b.decl("int", "p"),
            b.decl("int", "q"),
            b.decl("int", "r"),
            b.decl("int", "w"),
            b.assign("p", b.add(b.mul(c, "x"), "y")),
            b.assign("q", b.add(b.mul("p", "y"), "x")),
            b.assign("r", b.add(b.mul("q", "p"), c)),
            b.assign("w", b.add("r", "q")),
            _hidden_balance_branch("w", rng.randint(20, 90)),
            b.assign(b.index("B", 0), b.add("q", 1)),
            b.assign(b.index("B", 1), b.sub("r", "y")),
            b.assign(b.index("B", 2), b.add("w", "x")),
            b.ret(b.add("r", "p")),
        ],
    )


def float_curve(name, rng, degree=6):
    """jfig-style curve evaluation: high-degree Polynomial ILPs over many
    float inputs, plus a hidden float sampling loop (variable paths)."""
    params = [("float", "t"), ("float", "u"), ("float", "v"), ("float", "w"),
              ("float", "p"), ("float", "q"), ("float", "s"), ("int", "steps"),
              ("float[]", "F")]
    body = [
        b.decl("float", "acc"),
        b.decl("float", "basis"),
        b.decl("float", "area"),
        b.decl("int", "k"),
        b.decl("float", "span"),
        b.assign("acc", b.mul("s", 0.5)),
        b.assign("basis", b.add(b.mul("t", "u"), "v")),
    ]
    factors = ["t", "u", "v", "w", "p", "q"]
    for idx in range(2, degree):
        body.append(b.assign("basis", b.mul("basis", factors[idx % len(factors)])))
        if idx % 2 == 0:
            body.append(b.assign("acc", b.add("acc", "basis")))
    # affine transform pipeline over the evaluated point (rotation-style
    # arithmetic: lots of linear float work, the bulk of jfig's slices)
    body.extend(
        [
            b.decl("float", "px", b.add(b.mul("acc", 0.5), "t")),
            b.decl("float", "py", b.sub(b.mul("acc", 0.25), "u")),
            b.decl("float", "tx", b.add(b.mul(2.0, "px"), b.mul(3.0, "py"))),
            b.decl("float", "ty", b.sub(b.mul(2.0, "py"), "px")),
            b.assign("px", b.add("tx", "p")),
            b.assign("py", b.add("ty", "q")),
            b.assign("tx", b.add(b.mul("px", 0.75), b.mul("py", 0.5))),
            b.assign("ty", b.sub(b.mul("py", 0.75), b.mul("px", 0.5))),
            b.assign(b.index("F", 4), b.add("px", "py")),
            b.assign(b.index("F", 5), b.add("tx", "s")),
            b.assign(b.index("F", 6), b.sub("ty", "v")),
            b.assign("acc", b.add("acc", "basis")),
            # hidden sampling loop: accumulate the curve at `steps` points
            b.assign("area", 0.0),
            b.assign("span", b.add("acc", 1.0)),
            b.assign("k", 0),
            b.while_(
                b.lt("k", "steps"),
                [
                    b.assign("area", b.add("area", "span")),
                    b.assign("span", b.add("span", "u")),
                    b.assign("k", b.add("k", 1)),
                ],
            ),
            b.assign(b.index("F", 0), b.add("acc", "p")),
            b.assign(b.index("F", 1), b.mul("acc", 2.0)),
            b.assign(b.index("F", 2), b.add("area", "q")),
            b.assign(b.index("F", 3), b.sub("area", "acc")),
            b.ret("acc"),
        ]
    )
    return b.func(name, params, "float", body)


def rational_blend(name, rng):
    """jfig-style perspective division: a hidden non-constant denominator
    makes the leaked values Rational."""
    c = float(rng.randint(2, 5))
    return b.func(
        name,
        [("float", "x"), ("float", "y"), ("float", "w"), ("float[]", "F")],
        "float",
        [
            b.decl("float", "u"),
            b.decl("float", "d"),
            b.decl("float", "r"),
            b.decl("float", "g"),
            b.decl("float", "nx"),
            b.decl("float", "ny"),
            b.decl("float", "scale"),
            b.assign("u", b.add(b.mul(c, "x"), "y")),
            b.assign("d", b.add("w", b.mul("u", "u"))),
            b.assign("r", b.div(b.add("u", "x"), "d")),
            b.assign("g", b.div("u", b.add("d", 1.0))),
            # perspective-projected point: more rational leaks
            b.assign("nx", b.div(b.mul("u", "x"), "d")),
            b.assign("ny", b.div(b.mul("u", "y"), "d")),
            b.assign("scale", b.add(b.mul("r", "r"), 1.0)),
            b.assign(b.index("F", 0), b.mul("r", "y")),
            b.assign(b.index("F", 1), b.div("u", "d")),
            b.assign(b.index("F", 2), b.add("g", "r")),
            b.assign(b.index("F", 3), b.mul("g", "x")),
            b.assign(b.index("F", 4), b.add("nx", "ny")),
            b.assign(b.index("F", 5), b.mul("scale", "w")),
            b.assign(b.index("F", 6), b.sub("nx", "r")),
            b.ret("r"),
        ],
    )


def branch_cascade(name, rng, depth=3):
    """Chains of branches on hidden values: the open component must fetch
    hidden predicates — Arbitrary ILPs, hidden predicates in Table 4 —
    plus a fully hidden branch (hidden flow)."""
    t1 = rng.randint(5, 30)
    t2 = rng.randint(31, 90)
    t3 = rng.randint(91, 200)
    body = [
        b.decl("int", "s"),
        b.decl("int", "lvl"),
        b.decl("int", "bal"),
        b.assign("s", b.add(b.mul(rng.randint(2, 6), "x"), "y")),
        b.assign("lvl", 0),
        b.assign("bal", b.add("s", 1)),
        _hidden_balance_branch("bal", t1),
    ]
    cascade = b.if_(
        b.gt("s", t3),
        [b.assign("lvl", 3), b.assign("s", b.sub("s", t3))],
        [
            b.if_(
                b.gt("s", t2),
                [b.assign("lvl", 2), b.assign("s", b.sub("s", t2))],
                [
                    b.if_(
                        b.gt("s", t1),
                        [b.assign("lvl", 1), b.assign("s", b.sub("s", t1))],
                        [b.assign("lvl", 0)],
                    )
                ],
            )
        ],
    )
    body.append(cascade)
    body.extend(
        [
            b.assign(b.index("B", 0), b.mul("lvl", "z")),
            b.assign(b.index("B", 2), b.add("bal", "y")),
            b.if_(
                b.gt("s", "z"),
                [b.assign(b.index("B", 1), b.add("s", 1))],
                [b.assign(b.index("B", 1), 0)],
            ),
            b.ret(b.add("s", "lvl")),
        ]
    )
    return b.func(
        name,
        [("int", "x"), ("int", "y"), ("int", "z"), ("int[]", "B")],
        "int",
        body,
    )


def const_config(name, rng):
    """bloat-style configuration flags: hidden variables holding
    compile-time constants — Constant ILPs."""
    m1 = rng.randint(1, 4)
    m2 = rng.randint(5, 9)
    m3 = rng.randint(10, 19)
    return b.func(
        name,
        [("int", "x"), ("int[]", "B")],
        "int",
        [
            b.decl("int", "mode"),
            b.decl("int", "passes"),
            b.decl("int", "flags"),
            b.assign("mode", m1),
            b.if_(b.gt("x", 0), [b.assign("mode", m2)], []),
            b.assign("passes", m1 + m2),
            b.assign("flags", m3),
            b.assign(b.index("B", 0), "mode"),
            b.assign(b.index("B", 1), "passes"),
            b.assign(b.index("B", 2), "flags"),
            b.assign(b.index("B", 3), b.add("mode", "x")),
            b.ret(b.add("mode", "passes")),
        ],
    )


def mod_scrambler(name, rng):
    """Hash-style mod arithmetic on hidden values: Arbitrary ILPs."""
    m = rng.choice([7, 11, 13, 17])
    c = rng.randint(3, 9)
    return b.func(
        name,
        [("int", "x"), ("int", "y"), ("int[]", "B")],
        "int",
        [
            b.decl("int", "h"),
            b.decl("int", "slot"),
            b.decl("int", "probe"),
            b.assign("h", b.add(b.mul(c, "x"), "y")),
            b.assign("slot", b.mod("h", m)),
            b.assign("probe", b.mod(b.add("h", b.mul("slot", "slot")), m)),
            b.assign(b.index("B", 0), "slot"),
            b.assign(b.index("B", 1), b.mod(b.add("h", "slot"), m)),
            b.assign(b.index("B", 2), b.add("probe", "x")),
            b.ret("slot"),
        ],
    )


def linear_chain(name, rng, length=6):
    """A chain of linear updates over hidden scalars: Linear ILPs, plus a
    fully hidden rebalancing branch (hidden flow without loops)."""
    body = [b.decl("int", "v0", b.add(b.mul(rng.randint(2, 9), "x"), "y"))]
    for k in range(1, length):
        body.append(
            b.decl(
                "int",
                "v%d" % k,
                b.add(b.mul(rng.randint(2, 5), "v%d" % (k - 1)), rng.randint(0, 9)),
            )
        )
    last = "v%d" % (length - 1)
    body.append(_hidden_balance_branch(last, rng.randint(40, 160)))
    body.extend(
        [
            b.assign(b.index("B", 0), b.add(last, "x")),
            b.assign(b.index("B", 1), b.sub(last, "y")),
            b.assign(b.index("B", 2), b.add("v1", "v0")),
            b.ret(last),
        ]
    )
    return b.func(name, [("int", "x"), ("int", "y"), ("int[]", "B")], "int", body)


#: name -> (builder, parameter signature tag) — the driver generator uses
#: the tag to synthesise matching call sites.
TEMPLATES = {
    "accumulator_loop": (accumulator_loop, "izAB"),
    "table_walker": (table_walker, "inAB2"),
    "poly_mixer": (poly_mixer, "iiB"),
    "float_curve": (float_curve, "f7nB"),
    "rational_blend": (rational_blend, "f3B"),
    "branch_cascade": (branch_cascade, "iiiB"),
    "const_config": (const_config, "iB"),
    "mod_scrambler": (mod_scrambler, "iiB"),
    "linear_chain": (linear_chain, "iiB"),
}
