"""Synthetic evaluation corpora.

The paper evaluates on five real Java programs (javac, jess, jasmin, bloat,
jfig) that cannot be rebuilt here; these generators produce MiniJava corpora
with the same *statistical shape*: the method counts and self-contained
method breakdown of Table 1, split-method inventories sized like Table 2,
and per-program arithmetic flavour (jfig arithmetic-heavy with polynomial /
rational computations, javac with whole hidden loops and varying inputs,
bloat with many constants, ...).  Everything is seeded and deterministic.
"""

from repro.workloads.corpora import (
    CORPUS_BUILDERS,
    Corpus,
    bloat_like,
    build_corpus,
    jasmin_like,
    javac_like,
    jess_like,
    jfig_like,
)
from repro.workloads.inputs import TABLE5_RUNS, Table5Run

__all__ = [
    "CORPUS_BUILDERS",
    "Corpus",
    "TABLE5_RUNS",
    "Table5Run",
    "bloat_like",
    "build_corpus",
    "jasmin_like",
    "javac_like",
    "jess_like",
    "jfig_like",
]
