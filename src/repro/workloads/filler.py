"""Filler method generators reproducing the Table 1 population shape.

Table 1 classifies methods as self-contained or not, larger than 10
statements or not, and initializer or not.  These generators produce each
category on demand so a corpus can match the paper's exact breakdown:

* ``not_self_contained_*`` — the overwhelming majority in real programs:
  methods that call other methods, walk arrays, allocate, or do I/O;
* ``sc_small`` — self-contained but at most 10 statements;
* ``sc_large_initializer`` — self-contained, big, but just stores
  constants/parameters into fields ("their behavior can be easily
  learned");
* ``sc_large_noninit`` — the rare genuinely interesting whole-method hiding
  candidates (0 to 8 per program in the paper).
"""

from repro.lang import builders as b

#: number of scalar fields every filler class carries (initializers target
#: them; must exceed 10 so initializers clear the size filter)
FIELDS_PER_CLASS = 14


def filler_class_fields():
    return [("int", "f%d" % i) for i in range(FIELDS_PER_CLASS)]


def not_self_contained_caller(name, rng, sibling):
    """Calls a sibling method — disqualified by the call."""
    return b.func(
        name,
        [("int", "x")],
        "int",
        [
            b.decl("int", "t", b.add("x", rng.randint(1, 9))),
            b.ret(b.add(b.call(sibling, "t"), 1)),
        ],
    )


def not_self_contained_array(name, rng):
    """Walks an array — disqualified by aggregate access."""
    c = rng.randint(1, 5)
    return b.func(
        name,
        [("int[]", "data"), ("int", "n")],
        "int",
        [
            b.decl("int", "s", 0),
            b.for_(
                b.decl("int", "k", 0),
                b.lt("k", "n"),
                b.assign("k", b.add("k", 1)),
                [b.assign("s", b.add("s", b.index("data", "k")))],
            ),
            b.ret(b.mul("s", c)),
        ],
    )


def not_self_contained_alloc(name, rng):
    """Allocates an array — disqualified."""
    size = rng.randint(4, 32)
    return b.func(
        name,
        [("int", "x")],
        "int",
        [
            b.decl("int[]", "tmp", b.new_array("int", size)),
            b.assign(b.index("tmp", 0), "x"),
            b.ret(b.index("tmp", 0)),
        ],
    )


def not_self_contained_print(name, rng):
    """Performs I/O — must stay on the open side."""
    return b.func(
        name,
        [("int", "x")],
        "void",
        [
            b.decl("int", "t", b.mul("x", rng.randint(2, 6))),
            b.print_("t"),
        ],
    )


def sc_small(name, rng):
    """Self-contained, at most 10 statements."""
    c1 = rng.randint(2, 9)
    c2 = rng.randint(1, 9)
    return b.func(
        name,
        [("int", "x"), ("int", "y")],
        "int",
        [
            b.decl("int", "t", b.add(b.mul(c1, "x"), "y")),
            b.decl("int", "u", b.sub("t", c2)),
            b.ret(b.add("t", "u")),
        ],
    )


def sc_large_initializer(name, rng, n_stmts=12):
    """Self-contained, >10 statements, but every statement stores a
    constant or a parameter into a field."""
    body = []
    for i in range(min(n_stmts, FIELDS_PER_CLASS)):
        if i % 3 == 0:
            body.append(b.assign("f%d" % i, "p"))
        else:
            body.append(b.assign("f%d" % i, rng.randint(0, 99)))
    return b.func(name, [("int", "p")], "void", body)


def sc_large_noninit(name, rng, n_stmts=14):
    """Self-contained, >10 statements, real scalar computation."""
    body = [b.decl("int", "acc", b.add("x", "y"))]
    prev = "acc"
    for i in range(n_stmts - 2):
        var = "w%d" % i
        op = rng.choice([b.add, b.sub, b.mul])
        body.append(b.decl("int", var, op(prev, rng.randint(1, 7))))
        prev = var
    body.append(b.ret(prev))
    return b.func(name, [("int", "x"), ("int", "y")], "int", body)
