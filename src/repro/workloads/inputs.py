"""Table 5 run configurations.

Each paper row (benchmark x input) maps to a driver invocation
``main(n, m)`` of the matching corpus: ``n`` is chosen so the split run's
*component interaction count* lands near the paper's measurement for that
row, ``m`` sizes the per-unit open-side ballast (the work the
transformation does not touch).

The interpreter is orders of magnitude slower per statement than the
paper's JVM, so the Table 5 benchmark calibrates a per-row statement cost
such that the simulated "before" time equals the paper's baseline for that
row — one interpreted statement stands for a fixed number of real ones.
The quantities actually *measured* by the reproduction are the interaction
counts, the hidden/open statement split, and therefore the relative
overhead under the (paper-calibrated) 1.4 ms per round trip LAN model.
"""


class Table5Run:
    """One row of Table 5."""

    def __init__(self, benchmark, input_name, paper_interactions,
                 paper_before_s, paper_after_s, n, m):
        self.benchmark = benchmark
        self.input_name = input_name
        self.paper_interactions = paper_interactions
        self.paper_before_s = paper_before_s
        self.paper_after_s = paper_after_s
        self.n = n
        self.m = m

    @property
    def paper_increase_pct(self):
        return 100.0 * (self.paper_after_s - self.paper_before_s) / self.paper_before_s

    def __repr__(self):
        return "<Table5Run %s/%s n=%d m=%d>" % (
            self.benchmark,
            self.input_name,
            self.n,
            self.m,
        )


#: (benchmark, input label, paper interactions, before s, after s, n, m).
#: ``n`` targets the paper's interaction count given each corpus's
#: per-work-unit interaction rate (javac ~120, jess ~92, jasmin ~48,
#: bloat ~119, jfig ~150).
TABLE5_RUNS = [
    Table5Run("javac", "33K", 875, 2.13, 3.37, 7, 2000),
    Table5Run("javac", "355K", 4642, 7.91, 11.27, 37, 2000),
    Table5Run("jess", "dilemma (5K)", 51, 0.82, 1.07, 1, 2000),
    Table5Run("jess", "fullmab (12K)", 813, 5.39, 6.11, 9, 2000),
    Table5Run("jess", "hard (.5K)", 11, 5.53, 5.67, 1, 2000),
    Table5Run("jess", "stack (2K)", 63, 0.78, 1.05, 1, 2000),
    Table5Run("jess", "wordgame (5K)", 48, 8.55, 8.83, 1, 2000),
    Table5Run("jess", "zebra (7K)", 143, 2.67, 3.16, 2, 2000),
    Table5Run("jasmin", "small (124K)", 117, 1.14, 1.27, 2, 2000),
    Table5Run("bloat", "161smin.jar (149K)", 73, 22.93, 23.87, 1, 2000),
    Table5Run("bloat", "jess.jar (290K)", 41, 79.29, 82.53, 1, 2000),
]
