"""The five evaluation corpora.

Each corpus mirrors one of the paper's Java benchmarks: its Table 1 method
population (total methods; self-contained breakdown), a split-candidate
inventory flavoured like its Table 3 complexity mix, and a Table 5 driver
(``main(n, m)``) whose work scales with ``n`` (outer work units) and ``m``
(per-unit computation — the "ballast" that models all the code the
transformation leaves untouched).

Everything is generated deterministically from a per-corpus seed.
"""

import random

from repro.lang import ast
from repro.lang import builders as b
from repro.lang.typecheck import check_program
from repro.workloads import filler, templates


class CorpusSpec:
    """Generation parameters for one corpus."""

    def __init__(self, name, total_methods, sc_small, sc_large_init,
                 sc_large_noninit, split_mix, seed):
        self.name = name
        self.total_methods = total_methods
        self.sc_small = sc_small
        self.sc_large_init = sc_large_init
        self.sc_large_noninit = sc_large_noninit
        #: list of template names, one per split candidate (Table 2 order)
        self.split_mix = split_mix
        self.seed = seed


#: Table 1 populations and per-benchmark split flavours.
SPECS = {
    "javac": CorpusSpec(
        "javac",
        total_methods=1898,
        sc_small=8,
        sc_large_init=0,
        sc_large_noninit=8,
        split_mix=[
            "table_walker",
            "table_walker",
            "accumulator_loop",
            "const_config",
            "mod_scrambler",
            "branch_cascade",
            "linear_chain",
        ],
        seed=2003,
    ),
    "jess": CorpusSpec(
        "jess",
        total_methods=1622,
        sc_small=0,
        sc_large_init=6,
        sc_large_noninit=0,
        split_mix=[
            "branch_cascade",
            "branch_cascade",
            "branch_cascade",
            "branch_cascade",
            "linear_chain",
            "linear_chain",
            "const_config",
            "mod_scrambler",
            "mod_scrambler",
            "accumulator_loop",
            "poly_mixer",
        ],
        seed=1337,
    ),
    "jasmin": CorpusSpec(
        "jasmin",
        total_methods=645,
        sc_small=2,
        sc_large_init=2,
        sc_large_noninit=3,
        split_mix=[
            "linear_chain",
            "const_config",
            "branch_cascade",
            "branch_cascade",
            "mod_scrambler",
            "poly_mixer",
        ],
        seed=77,
    ),
    "bloat": CorpusSpec(
        "bloat",
        total_methods=3839,
        sc_small=26,
        sc_large_init=8,
        sc_large_noninit=1,
        split_mix=[
            "const_config",
            "const_config",
            "const_config",
            "const_config",
            "const_config",
            "branch_cascade",
            "branch_cascade",
            "branch_cascade",
            "branch_cascade",
            "linear_chain",
            "linear_chain",
            "linear_chain",
            "poly_mixer",
            "poly_mixer",
            "mod_scrambler",
            "mod_scrambler",
        ],
        seed=404,
    ),
    "jfig": CorpusSpec(
        "jfig",
        total_methods=2987,
        sc_small=15,
        sc_large_init=6,
        sc_large_noninit=0,
        split_mix=[
            "float_curve",
            "float_curve",
            "float_curve",
            "float_curve",
            "float_curve",
            "rational_blend",
            "rational_blend",
            "rational_blend",
            "rational_blend",
            "poly_mixer",
            "poly_mixer",
            "poly_mixer",
            "branch_cascade",
            "branch_cascade",
            "const_config",
            "linear_chain",
            "linear_chain",
        ],
        seed=1962,
    ),
}

_METHODS_PER_CLASS = 24
_ARRAY_SIZE = 256


class Corpus:
    """A generated corpus ready for analysis and execution."""

    def __init__(self, name, spec, program, checker, candidate_names):
        self.name = name
        self.spec = spec
        self.program = program
        self.checker = checker
        #: free functions intended (and expected) to be picked for splitting
        self.candidate_names = candidate_names

    def __repr__(self):
        return "<Corpus %s: %d methods, %d split candidates>" % (
            self.name,
            len(self.program.all_functions()),
            len(self.candidate_names),
        )


def build_corpus(name, scale=1.0):
    """Build one corpus; ``scale`` shrinks the filler population (the
    split candidates and driver are never scaled) so tests stay fast."""
    spec = SPECS[name]
    rng = random.Random(spec.seed)

    # Every third candidate is realised as a *method* of an "Engine" class
    # rather than a free function — the paper splits Java methods, and this
    # exercises the method-splitting machinery (receiver-carrying
    # activations) at corpus scale.
    candidates = []
    candidate_tags = []
    method_flags = []
    for i, template_name in enumerate(spec.split_mix):
        builder, tag = templates.TEMPLATES[template_name]
        fn = builder("cand_%d_%s" % (i, template_name), rng)
        candidates.append(fn)
        candidate_tags.append(tag)
        method_flags.append(i % 3 == 2)

    engine_methods = [fn for fn, m in zip(candidates, method_flags) if m]
    engine = b.class_("Engine", [("int", "gen")], engine_methods) if engine_methods else None

    driver_fns = _build_driver(candidates, candidate_tags, method_flags, rng)

    sc_small_n = _scaled(spec.sc_small, scale)
    sc_large_init_n = _scaled(spec.sc_large_init, scale)
    sc_large_noninit_n = _scaled(spec.sc_large_noninit, scale)

    fixed = len(candidates) + len(driver_fns)
    total_target = max(int(spec.total_methods * scale), fixed + 8)
    sc_total = sc_small_n + sc_large_init_n + sc_large_noninit_n
    n_filler = max(total_target - fixed - sc_total, 4)

    classes = _build_filler_classes(
        rng, n_filler, sc_small_n, sc_large_init_n, sc_large_noninit_n
    )

    free_candidates = [fn for fn, m in zip(candidates, method_flags) if not m]
    if engine is not None:
        classes = [engine] + classes
    program = b.program(functions=driver_fns + free_candidates, classes=classes)
    checker = check_program(program)
    return Corpus(
        name, spec, program, checker, [fn.qualified_name for fn in candidates]
    )


def javac_like(scale=1.0):
    return build_corpus("javac", scale)


def jess_like(scale=1.0):
    return build_corpus("jess", scale)


def jasmin_like(scale=1.0):
    return build_corpus("jasmin", scale)


def bloat_like(scale=1.0):
    return build_corpus("bloat", scale)


def jfig_like(scale=1.0):
    return build_corpus("jfig", scale)


#: paper benchmark name -> corpus builder
CORPUS_BUILDERS = {
    "javac": javac_like,
    "jess": jess_like,
    "jasmin": jasmin_like,
    "bloat": bloat_like,
    "jfig": jfig_like,
}


def _scaled(count, scale):
    if count == 0:
        return 0
    return max(1, int(round(count * scale))) if scale < 1.0 else count


# -- driver ---------------------------------------------------------------------


def _candidate_call(fn_name, tag):
    """A call expression for a candidate, with arguments derived from the
    work-unit counter ``u`` and the scale parameter ``m``."""
    if tag == "iiB":
        return b.call(fn_name, b.add(b.mod("u", 19), 1), b.mod("u", 7), "B")
    if tag == "iB":
        return b.call(fn_name, b.sub(b.mod("u", 5), 2), "B")
    if tag == "iiiB":
        return b.call(
            fn_name, b.mod("u", 11), b.add(b.mod("u", 6), 1), b.add(b.mod("u", 9), 1), "B"
        )
    if tag == "izAB":
        # accumulator_loop(x, y, z, A, B): keep the hidden loop's trip count
        # positive and bounded.
        return b.call(
            fn_name,
            b.mod("u", 3),
            b.mod("u", 4),
            b.add(b.mod("u", 17), 40),
            "A",
            "B",
        )
    if tag == "inAB2":
        # table_walker(x, n, A, B): n array elements stream to the hidden
        # side per call.
        return b.call(fn_name, "u", b.add(b.mod("m", 24), 8), "A", "B")
    if tag == "f7nB":
        args = [b.add(b.mod("u", k + 2), 0.25 * (k + 1)) for k in range(7)]
        args.append(b.add(b.mod("u", 6), 3))  # hidden sampling-loop trip count
        return b.call(fn_name, *args, "F")
    if tag == "f3B":
        return b.call(
            fn_name,
            b.add(b.mod("u", 5), 0.5),
            b.add(b.mod("u", 3), 0.25),
            b.add(b.mod("u", 7), 1.5),
            "F",
        )
    raise ValueError("unknown candidate tag %r" % tag)


def _returns_float(tag):
    return tag.startswith("f")


def _build_driver(candidates, tags, method_flags, rng):
    """``main(n, m)`` -> work loop -> ``process`` -> straight-line calls to
    every split candidate plus recursive (hence never-split) ballast."""
    process_body = [
        b.decl("int", "acc", b.call("ballast", "u", "m", "A")),
    ]
    needs_floats = any(_returns_float(tag) for tag in tags)
    any_methods = any(method_flags)
    for fn, tag, is_method in zip(candidates, tags, method_flags):
        call = _candidate_call(fn.name, tag)
        if is_method:
            call = b.method_call("eng", fn.name, *call.args)
        if _returns_float(tag):
            call = b.call("floor", call)
        process_body.append(b.assign("acc", b.add("acc", call)))
    process_body.append(b.ret("acc"))
    process_params = [("int", "u"), ("int", "m"), ("int[]", "A"), ("int[]", "B")]
    if needs_floats:
        process_params.append(("float[]", "F"))
    if any_methods:
        process_params.append(("Engine", "eng"))
    process = b.func("process", process_params, "int", process_body)

    ballast = b.func(
        "ballast",
        [("int", "u"), ("int", "m"), ("int[]", "A")],
        "int",
        [
            # Dead self-recursion keeps this heavyweight helper out of the
            # call-graph cut (the paper avoids splitting recursive functions).
            b.if_(b.lt("m", 0), [b.ret(b.call("ballast", "u", b.add("m", 1), "A"))]),
            b.decl("int", "s", "u"),
            b.decl("int", "k", 0),
            b.while_(
                b.lt("k", "m"),
                [
                    b.assign(
                        "s",
                        b.sub(
                            b.add("s", b.mul(b.index("A", b.mod("k", 251)), 3)),
                            b.div("s", 7),
                        ),
                    ),
                    b.assign("k", b.add("k", 1)),
                ],
            ),
            b.ret("s"),
        ],
    )

    process_args = ["u", "m", "A", "B"]
    if needs_floats:
        process_args.append("F")
    if any_methods:
        process_args.append("eng")
    main_prologue = [
        b.decl("int[]", "A", b.new_array("int", _ARRAY_SIZE)),
        b.decl("int[]", "B", b.new_array("int", 16)),
    ]
    if needs_floats:
        main_prologue.append(b.decl("float[]", "F", b.new_array("float", 16)))
    if any_methods:
        main_prologue.append(b.decl("Engine", "eng", b.new_object("Engine")))
    main = b.func(
        "main",
        [("int", "n"), ("int", "m")],
        "int",
        main_prologue + [
            b.for_(
                b.decl("int", "k", 0),
                b.lt("k", _ARRAY_SIZE),
                b.assign("k", b.add("k", 1)),
                [
                    b.assign(
                        b.index("A", "k"),
                        b.mod(b.add(b.mul("k", "k"), b.mul(3, "k")), 97),
                    )
                ],
            ),
            b.decl("int", "total", 0),
            b.decl("int", "u", 0),
            b.while_(
                b.lt("u", "n"),
                [
                    b.assign(
                        "total",
                        b.add("total", b.call("process", *process_args)),
                    ),
                    b.assign("u", b.add("u", 1)),
                ],
            ),
            b.print_("total"),
            b.print_(b.index("B", 0)),
            b.print_(b.index("B", 1)),
            b.ret("total"),
        ],
    )
    return [main, process, ballast]


# -- filler population -------------------------------------------------------------


def _build_filler_classes(rng, n_filler, sc_small_n, sc_large_init_n, sc_large_noninit_n):
    """Distribute the method population over classes of ~24 methods."""
    makers = []
    for _ in range(sc_small_n):
        makers.append(lambda name, r: filler.sc_small(name, r))
    for _ in range(sc_large_init_n):
        makers.append(lambda name, r: filler.sc_large_initializer(name, r))
    for _ in range(sc_large_noninit_n):
        makers.append(lambda name, r: filler.sc_large_noninit(name, r))
    nsc_makers = [
        lambda name, r: filler.not_self_contained_caller(name, r, "base"),
        lambda name, r: filler.not_self_contained_array(name, r),
        lambda name, r: filler.not_self_contained_alloc(name, r),
        lambda name, r: filler.not_self_contained_print(name, r),
    ]
    # 'base' methods (one per class) count toward the filler population.
    n_classes = max(1, (n_filler + len(makers)) // _METHODS_PER_CLASS + 1)
    remaining_filler = max(n_filler - n_classes, 0)
    for i in range(remaining_filler):
        makers.append(nsc_makers[i % len(nsc_makers)])
    rng.shuffle(makers)

    classes = []
    idx = 0
    per_class = max(1, (len(makers) + n_classes - 1) // n_classes)
    for ci in range(n_classes):
        chunk = makers[idx : idx + per_class]
        idx += per_class
        methods = [filler.not_self_contained_alloc("base", rng)]
        for mi, make in enumerate(chunk):
            methods.append(make("m%d_%d" % (ci, mi), rng))
        classes.append(
            b.class_("C%d" % ci, filler.filler_class_fields(), methods)
        )
    return classes
