"""The arithmetic complexity lattice.

The paper characterises the function relating a leaked value to observable
inputs by a triple ``<Type, Inputs, Degree>`` with

    Constant ≺ Linear ≺ Polynomial ≺ Rational ≺ Arbitrary.

``Inputs`` is the set of observable open-component variables involved (the
paper reports their count, which may be "varying" when loops feed array
elements to the hidden side one per iteration); ``Degree`` is the highest
polynomial degree involved (absent for Arbitrary).

This module implements the triples, the partial order with its MIN/MAX
(Fig. 3 uses MIN across def-use edges for a conservative lower bound;
the ILP-level summary uses MAX across paths), and the ``EVAL`` rules for
every operator of the language.
"""

VARYING = "varying"

#: degree beyond which a recurrence is considered to have left the
#: polynomial world (keeps the fixpoint iteration finite)
MAX_DEGREE = 9


class CType:
    CONSTANT = "Constant"
    LINEAR = "Linear"
    POLYNOMIAL = "Polynomial"
    RATIONAL = "Rational"
    ARBITRARY = "Arbitrary"


TYPE_ORDER = [
    CType.CONSTANT,
    CType.LINEAR,
    CType.POLYNOMIAL,
    CType.RATIONAL,
    CType.ARBITRARY,
]

_RANK = {t: i for i, t in enumerate(TYPE_ORDER)}


class AC:
    """One ``<Type, Inputs, Degree>`` arithmetic complexity triple.

    Immutable value object; ``inputs`` is a frozenset of variable names or
    the string :data:`VARYING`; ``degree`` is an int or :data:`VARYING`
    (``None`` for Arbitrary, where degree is meaningless).
    """

    __slots__ = ("type", "inputs", "degree")

    def __init__(self, ctype, inputs=frozenset(), degree=0):
        self.type = ctype
        self.inputs = inputs if inputs == VARYING else frozenset(inputs)
        if ctype == CType.ARBITRARY:
            degree = None  # degree is meaningless past Rational
        elif ctype == CType.CONSTANT:
            degree = 0  # a compile-time constant has degree 0 by definition
        self.degree = degree

    # -- ordering ----------------------------------------------------------

    def rank(self):
        """Sortable key implementing the partial order (type first, then
        degree, then input count)."""
        degree = self.degree
        if degree is None:
            degree = 0
        elif degree == VARYING:
            degree = MAX_DEGREE + 1
        inputs = self.input_count()
        if inputs == VARYING:
            inputs = 10_000
        return (_RANK[self.type], degree, inputs)

    def input_count(self):
        if self.inputs == VARYING:
            return VARYING
        return len(self.inputs)

    def __eq__(self, other):
        return (
            isinstance(other, AC)
            and self.type == other.type
            and self.inputs == other.inputs
            and self.degree == other.degree
        )

    def __hash__(self):
        return hash((self.type, self.inputs, self.degree))

    def __repr__(self):
        degree = "-" if self.degree is None else str(self.degree)
        count = self.input_count()
        return "<%s, %s, %s>" % (self.type, count, degree)


def constant_ac():
    return AC(CType.CONSTANT, frozenset(), 0)


def linear_ac(*names):
    return AC(CType.LINEAR, frozenset(names), 1)


def arbitrary_ac(inputs=frozenset()):
    return AC(CType.ARBITRARY, inputs, None)


def _merge_inputs(a, b):
    if a == VARYING or b == VARYING:
        return VARYING
    return a | b


def _merge_degrees(op, a, b):
    if a is None or b is None:
        return None
    if a == VARYING or b == VARYING:
        return VARYING
    if op == "add":
        return max(a, b)
    return a + b  # multiplication


def _cap(ac):
    """Degrees past MAX_DEGREE collapse to Arbitrary (non-polynomial for
    all practical recovery purposes, and it keeps fixpoints finite)."""
    if ac.degree not in (None, VARYING) and ac.degree > MAX_DEGREE:
        return AC(CType.ARBITRARY, ac.inputs, None)
    return ac


def ac_max(a, b):
    """Join under the ILP-level MAX (paper: across paths)."""
    return a if a.rank() >= b.rank() else b


def ac_min(a, b):
    """Meet under the Fig. 3 MIN (across def-use edges: lower bound)."""
    return a if a.rank() <= b.rank() else b


def _join_type(a, b):
    return TYPE_ORDER[max(_RANK[a], _RANK[b])]


def eval_binary(op, a, b):
    """EVAL for a binary operator applied to operand complexities."""
    inputs = _merge_inputs(a.inputs, b.inputs)
    if a.type == CType.ARBITRARY or b.type == CType.ARBITRARY:
        return arbitrary_ac(inputs)
    if op in ("+", "-"):
        ctype = _join_type(a.type, b.type)
        return _cap(AC(ctype, inputs, _merge_degrees("add", a.degree, b.degree)))
    if op == "*":
        if a.type == CType.CONSTANT:
            return AC(b.type, inputs, b.degree)
        if b.type == CType.CONSTANT:
            return AC(a.type, inputs, a.degree)
        # linear*linear and beyond are polynomial; a rational factor keeps
        # the product rational.
        ctype = _join_type(_join_type(a.type, b.type), CType.POLYNOMIAL)
        return _cap(AC(ctype, inputs, _merge_degrees("mul", a.degree, b.degree)))
    if op == "/":
        if b.type == CType.CONSTANT:
            return AC(a.type, inputs, a.degree)
        # A non-constant divisor makes the expression rational.
        return _cap(AC(CType.RATIONAL, inputs, _merge_degrees("mul", a.degree, b.degree)))
    # %, relational and boolean operators are arithmetically arbitrary.
    return arbitrary_ac(inputs)


def eval_unary(op, a):
    if op == "-":
        return a
    return arbitrary_ac(a.inputs)


def eval_builtin(name, args):
    """EVAL for math builtins: all are non-polynomial operators except that
    composing with constants stays constant."""
    inputs = frozenset()
    all_constant = True
    for a in args:
        inputs = _merge_inputs(inputs, a.inputs)
        if a.type != CType.CONSTANT:
            all_constant = False
    if all_constant:
        return constant_ac()
    return arbitrary_ac(inputs)


def raise_by_iteration(ac, iter_ac, multiplicative=False):
    """The Fig. 3 ``RAISE`` rule: adjust the propagated complexity of a
    value computed by a loop recurrence when it escapes loop nest ``L``,
    based on ``AC(Iter(L))``.

    An additive recurrence accumulated over ``n`` iterations behaves like a
    product with the trip count (``x += c`` is linear in ``n``; ``x += i``
    with linear ``i`` is quadratic); a multiplicative recurrence is
    geometric — beyond polynomial — hence Arbitrary.

    One exception keeps the estimate a lower bound: accumulating a *fresh
    observable per iteration* (``acc += A[j]`` where each element crosses
    the channel — the paper's javac case) has a closed form that is linear
    in the observed values, so the type stays Linear with *varying* inputs.
    """
    if multiplicative:
        return arbitrary_ac(_merge_inputs(ac.inputs, iter_ac.inputs))
    if ac.type == CType.LINEAR and ac.inputs == VARYING:
        return AC(CType.LINEAR, VARYING, 1)
    return eval_binary("*", ac, iter_ac)
