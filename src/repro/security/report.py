"""Per-program security summaries: the aggregations behind Tables 3 and 4."""

from repro.security.controlflow import control_flow_complexity
from repro.security.estimator import estimate_split_complexities
from repro.security.lattice import CType, VARYING


class ComplexityReport:
    """All ILP complexities of one split program, with the Table 3/4
    aggregate views."""

    def __init__(self, name, complexities):
        self.name = name
        self.complexities = list(complexities)

    # -- Table 3 -------------------------------------------------------------

    def type_histogram(self):
        counts = {t: 0 for t in (
            CType.CONSTANT,
            CType.LINEAR,
            CType.POLYNOMIAL,
            CType.RATIONAL,
            CType.ARBITRARY,
        )}
        for c in self.complexities:
            counts[c.ac.type] += 1
        return counts

    def max_inputs(self):
        """Maximum input count; ``"varying"`` dominates (the javac case)."""
        best = 0
        for c in self.complexities:
            count = c.ac.input_count()
            if count == VARYING:
                return VARYING
            best = max(best, count)
        return best

    def max_degree(self):
        best = 0
        for c in self.complexities:
            d = c.ac.degree
            if d in (None, VARYING):
                continue
            best = max(best, d)
        return best

    # -- Table 4 -------------------------------------------------------------

    def paths_variable_count(self):
        return sum(1 for c in self.complexities if c.cc is not None and c.cc.paths_variable)

    def predicates_hidden_count(self):
        return sum(
            1 for c in self.complexities if c.cc is not None and c.cc.predicates == "hidden"
        )

    def flow_hidden_count(self):
        return sum(1 for c in self.complexities if c.cc is not None and c.cc.flow == "hidden")

    def __repr__(self):
        return "<ComplexityReport %s: %d ILPs %r>" % (
            self.name,
            len(self.complexities),
            self.type_histogram(),
        )


def analyze_split_security(split_program, checker, name="program"):
    """Run the full Section 3 analysis over every split function of a
    :class:`~repro.core.program.SplitProgram`."""
    from repro.analysis.function import analyze_function

    complexities = []
    for qualified, split in split_program.splits.items():
        fn = split_program.original.function(qualified)
        analysis = analyze_function(fn, checker)
        for c in estimate_split_complexities(split, analysis):
            c.cc = control_flow_complexity(c.ilp, split, analysis)
            complexities.append(c)
    return ComplexityReport(name, complexities)
