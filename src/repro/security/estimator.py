"""The Fig. 3 algorithm: conservative estimation of ILP arithmetic
complexity by propagating ``<Type, Inputs, Degree>`` triples along def-use
edges of the *original* function, given the hidden/open partition produced
by the splitter.

Key rules, as in the paper:

* ``AC(d_v@n) = EVAL(exp)`` for a definition ``n : v = exp``;
* ``AC(u_b@n) = MIN over reaching definitions of PC(d_b@n', u_b@n)`` —
  MIN because the estimate is a lower bound;
* ``PC`` short-circuits *observable* values: a value assigned in the open
  component — or a hidden definition *definitely leaked* at some open use
  (``LeakedDefn``) — propagates as Constant (compile-time constant) or
  Linear (a fresh observable input), regardless of how it was computed;
* ``RAISE(PC, Iter(L))`` adjusts a value that escapes a loop nest it was
  iteratively accumulated in, based on the arithmetic complexity of the
  loop's trip count.  (We apply RAISE only to definitions participating in
  a loop-carried recurrence — a loop-invariant value does not gain
  complexity from the loop, and the estimate must stay a lower bound;
  multiplicative recurrences raise straight to Arbitrary.)

Observability here is *wire-level*: any value that crosses the channel in
the clear is observable.  That covers values sent by ``Of`` (set fragments,
case (ii) right-hand sides, hidden parameters), values fetched by ``Of``
(get fragments), array elements and fields served to ``Hf`` through
callbacks, and bare-variable expression fragments.
"""

from repro.lang import ast
from repro.analysis.ddg import exits_loop
from repro.analysis.loops import match_counted_loop
from repro.analysis.slicing import SliceKind
from repro.lang.typecheck import BUILTIN_SIGNATURES
from repro.security.lattice import (
    AC,
    CType,
    VARYING,
    ac_max,
    ac_min,
    arbitrary_ac,
    constant_ac,
    eval_binary,
    eval_builtin,
    eval_unary,
    linear_ac,
    raise_by_iteration,
)

_MAX_ROUNDS = 100


class ILPComplexity:
    """Result record: one ILP with its arithmetic (and, once
    :mod:`repro.security.controlflow` has run, control-flow) complexity.

    ``fn_name`` is the qualified name of the split function; together with
    the fragment label it forms :attr:`key`, the stable identity that the
    runtime telemetry uses too."""

    def __init__(self, ilp, ac, cc=None, fn_name=None):
        self.ilp = ilp
        self.ac = ac
        self.cc = cc
        self.fn_name = fn_name

    @property
    def key(self):
        """``(fn, label)`` — matches the ``fn``/``label`` label pair on
        ``repro_channel_values_total`` and ``repro_server_calls_total``,
        so runtime observations join to this static estimate
        (:mod:`repro.obs.audit`)."""
        return (self.fn_name or "-", str(self.ilp.label))

    def __repr__(self):
        return "<ILPComplexity %r AC=%r CC=%r>" % (self.ilp, self.ac, self.cc)


def estimate_split_complexities(split, analysis):
    """Estimate ``AC(f_ILP)`` for every ILP of ``split``.

    ``analysis`` is the :class:`~repro.analysis.function.FunctionAnalysis`
    of the *original* function.
    """
    estimator = Estimator(split, analysis)
    fn_name = split.original.qualified_name
    return [
        ILPComplexity(ilp, estimator.ilp_ac(ilp), fn_name=fn_name)
        for ilp in split.ilps
    ]


class Estimator:
    def __init__(self, split, analysis):
        self.split = split
        self.analysis = analysis
        self.defuse = analysis.defuse
        self.cfg = analysis.cfg
        self.loops = analysis.loops
        self.ddg = analysis.ddg
        self.hidden_vars = split.hidden_vars
        self._hidden_exec = self._hidden_executed_statements()
        self._recurrent_cache = {}
        self._iter_cache = {}
        self._iter_in_progress = set()
        self.ac = {}  # Def -> current AC estimate (hidden-executed defs only)
        self._leaked = self._compute_leaked_defs()
        self._solve()

    # -- partition ------------------------------------------------------------

    def _hidden_executed_statements(self):
        """Original statements whose execution happens inside ``Hf``."""
        hidden = set()
        for stmt, kind in self.split.slice.statements.items():
            if kind == SliceKind.FULL:
                hidden.add(stmt)
        for construct in self.split.hidden_constructs:
            for s in ast.walk_stmts([construct]):
                hidden.add(s)
            if isinstance(construct, ast.For):
                if construct.init is not None:
                    hidden.add(construct.init)
                if construct.update is not None:
                    hidden.add(construct.update)
        return hidden

    def _def_executed_hidden(self, d):
        if d.entry:
            # Entry values of hidden parameters are sent over the channel;
            # everything else starts on the open side anyway.
            return False
        return d.node.stmt in self._hidden_exec

    def _compute_leaked_defs(self):
        """Hidden definitions definitely leaked at some open use
        (the paper's ``LeakedDefn``)."""
        leaked = set()
        for use in self.defuse.uses:
            reaching = self.defuse.reaching_defs(use)
            if len(reaching) != 1:
                continue
            d = reaching[0]
            if not self._def_executed_hidden(d):
                continue
            if self._use_surfaces_raw_value(use):
                leaked.add(d)
        return leaked

    def _use_surfaces_raw_value(self, use):
        """Does this use cause the raw value to cross the channel?"""
        node = use.node
        if node.kind == "cond":
            # Either hidden with the construct, or leaked only as a boolean
            # through a pred fragment — never the raw value.
            return False
        stmt = node.stmt
        if stmt in self._hidden_exec:
            return False
        kind = self.split.slice.kind_of(stmt)
        if kind in (SliceKind.USE, SliceKind.LHS):
            return True  # open evaluation fetches the variable's raw value
        if kind == SliceKind.RHS:
            # The fragment returns the expression's value; it equals the
            # variable only when the expression is the bare variable.
            expr = stmt.value if isinstance(stmt, (ast.Assign, ast.Return, ast.Print)) else None
            return isinstance(expr, ast.VarRef) and expr.name == use.name
        if kind is None:
            return True  # plain open statement
        return False

    def _observable(self, d):
        return (not self._def_executed_hidden(d)) or d in self._leaked

    def _def_is_constant(self, d):
        return d.expr is not None and isinstance(
            d.expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)
        )

    # -- fixpoint -----------------------------------------------------------------

    def _solve(self):
        # MIN-based propagation: descending Kleene iteration from TOP.
        # (Starting at bottom would pin loop recurrences like ``sum = sum+i``
        # at Constant through their self-edge.)
        hidden_defs = [d for d in self.defuse.defs if self._def_executed_hidden(d)]
        for d in hidden_defs:
            self.ac[d] = arbitrary_ac()
        for _round in range(_MAX_ROUNDS):
            changed = False
            for d in hidden_defs:
                new = self._def_ac(d)
                if new != self.ac[d]:
                    self.ac[d] = new
                    changed = True
            if not changed:
                break

    def _def_ac(self, d):
        """``AC(d_v@n) = EVAL(exp)``."""
        if d.expr is None:
            # weak def (array store) or bare declaration: treated as an
            # unknown stored value
            return constant_ac()
        return self._expr_ac(d.expr, d.node)

    def _expr_ac(self, expr, node, output_mode=False):
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return constant_ac()
        if isinstance(expr, ast.VarRef):
            return self._use_ac(expr.name, node, output_mode)
        if isinstance(expr, ast.BinaryOp):
            return eval_binary(
                expr.op,
                self._expr_ac(expr.left, node, output_mode),
                self._expr_ac(expr.right, node, output_mode),
            )
        if isinstance(expr, ast.UnaryOp):
            return eval_unary(expr.op, self._expr_ac(expr.operand, node, output_mode))
        if isinstance(expr, ast.Call):
            args = [self._expr_ac(a, node, output_mode) for a in expr.args]
            if expr.name in BUILTIN_SIGNATURES:
                return eval_builtin(expr.name, args)
            # A non-builtin call result is computed openly (case (ii)) and
            # sent across: a fresh observable input.
            return AC(CType.LINEAR, frozenset([expr.name + "()"]), 1)
        if isinstance(expr, ast.MethodCall):
            return AC(CType.LINEAR, frozenset([expr.name + "()"]), 1)
        if isinstance(expr, ast.Index):
            # Array elements are served over the channel one at a time: an
            # observable input; inside a loop the element changes per
            # iteration, so the input set is "varying" (the paper's javac
            # case).
            base = expr.base.name if isinstance(expr.base, ast.VarRef) else "?"
            if self._node_in_loop(node):
                return AC(CType.LINEAR, VARYING, 1)
            return AC(CType.LINEAR, frozenset([base + "[]"]), 1)
        if isinstance(expr, ast.FieldAccess):
            name = "%s.%s" % (
                expr.obj.name if isinstance(expr.obj, ast.VarRef) else "?",
                expr.name,
            )
            return AC(CType.LINEAR, frozenset([name]), 1)
        if isinstance(expr, (ast.NewArray, ast.NewObject)):
            return arbitrary_ac()
        raise TypeError("no AC evaluation for %r" % (expr,))

    def _node_in_loop(self, node):
        return any(loop.contains(node) for loop in self.loops)

    def _use_ac(self, name, node, output_mode=False):
        """``AC(u)`` = MIN over reaching defs of ``PC``; in output mode the
        observability shortcut is skipped for the single-reaching-def case
        (the paper's output rule: report the complexity of the leaked
        defining expression, not of the already-leaked value)."""
        use = self._find_use(name, node)
        if use is None:
            return linear_ac(name)
        reaching = self.defuse.reaching_defs(use)
        if not reaching:
            return linear_ac(name)
        if output_mode:
            # The paper defines the overall ILP complexity as the MAX across
            # paths; at the leak point itself we therefore join over the
            # reaching definitions, reporting each hidden definition's own
            # computation (LeakedDefn output rule) rather than the shortcut
            # "this value is already leaked here".
            result = None
            for d in reaching:
                if self._def_executed_hidden(d):
                    pc = self._raise_along(self._current_ac(d), d, use)
                else:
                    pc = self._raise_along(self._def_ac_open(d), d, use)
                result = pc if result is None else ac_max(result, pc)
            return result
        result = None
        for d in reaching:
            pc = self._pc(d, use)
            result = pc if result is None else ac_min(result, pc)
        return result

    def _find_use(self, name, node):
        for use in self.defuse.uses_at.get(node, []):
            if use.name == name:
                return use
        return None

    def _current_ac(self, d):
        if d in self.ac:
            return self.ac[d]
        return self._def_ac_open(d)

    def _def_ac_open(self, d):
        if self._def_is_constant(d):
            return constant_ac()
        return linear_ac(d.name)

    def _pc(self, d, use):
        """``PC(d@n', u@n)`` with the RAISE adjustment."""
        if self._observable(d):
            if self._def_is_constant(d):
                return constant_ac()
            pc = linear_ac(d.name)
        else:
            pc = self.ac.get(d, constant_ac())
        return self._raise_along(pc, d, use)

    def _raise_along(self, pc, d, use):
        for dep in self.ddg.deps_from_def(d):
            if dep.u is not use:
                continue
            for loop in exits_loop(dep, self.loops):
                if not self._is_recurrent(d, loop):
                    continue
                iter_ac = self._loop_iter_ac(loop)
                pc = raise_by_iteration(
                    pc, iter_ac, multiplicative=self._is_multiplicative(d)
                )
            break
        return pc

    # -- loops ------------------------------------------------------------------

    def _is_recurrent(self, d, loop):
        key = loop.header.id
        if key not in self._recurrent_cache:
            self._recurrent_cache[key] = self.ddg.recurrent_defs(loop)
        return d in self._recurrent_cache[key]

    def _is_multiplicative(self, d):
        """Does the recurrence combine the accumulator multiplicatively?
        (``x = x * k`` / ``x = x / k`` / under a builtin — geometric.)"""
        if d.expr is None:
            return False
        return _var_under_mul(d.expr, d.name, under=False)

    def _loop_iter_ac(self, loop):
        """``AC(Iter(L))``: arithmetic complexity of the trip count in terms
        of values at loop entry.

        Trip counts can be mutually dependent (each loop's bound accumulated
        inside the other, under a common outer loop); the in-progress set
        breaks that cycle at Arbitrary — such trip counts have no closed
        form the adversary could exploit anyway.
        """
        key = loop.header.id
        if key in self._iter_cache:
            return self._iter_cache[key]
        if key in self._iter_in_progress:
            return arbitrary_ac()
        self._iter_in_progress.add(key)
        try:
            result = self._compute_iter_ac(loop)
        finally:
            self._iter_in_progress.discard(key)
        self._iter_cache[key] = result
        return result

    def _compute_iter_ac(self, loop):
        counted = match_counted_loop(loop.stmt) if loop.stmt is not None else None
        if counted is None:
            return arbitrary_ac()
        cond_node = loop.header
        bound_ac = self._expr_ac(counted.bound_expr, cond_node)
        entry_ac = self._entry_value_ac(counted.var, cond_node, loop)
        # trip = (bound - entry) / step, step a compile-time constant
        return eval_binary("-", bound_ac, entry_ac)

    def _entry_value_ac(self, name, cond_node, loop):
        """AC of a variable's value on loop entry: MIN over the reaching
        definitions that come from outside the loop."""
        use = self._find_use(name, cond_node)
        if use is None:
            return linear_ac(name)
        outside = [
            d
            for d in self.defuse.reaching_defs(use)
            if d.entry or not loop.contains(d.node)
        ]
        if not outside:
            return linear_ac(name)
        result = None
        for d in outside:
            pc = self._pc(d, use)
            result = pc if result is None else ac_min(result, pc)
        return result

    # -- ILP output rule -----------------------------------------------------------

    def ilp_ac(self, ilp):
        node = self.cfg.node_of_stmt.get(ilp.original_stmt)
        if node is None:
            # Statement synthesised during splitting (shouldn't happen for
            # ILPs, which always anchor to an original statement).
            return arbitrary_ac()
        if ilp.kind == "pred":
            return self._expr_ac(ilp.leaked_expr, node, output_mode=True)
        if ilp.leaked_var is not None:
            return self._use_ac(ilp.leaked_var, node, output_mode=True)
        return self._expr_ac(ilp.leaked_expr, node, output_mode=True)


def _var_under_mul(expr, name, under):
    """True when ``name`` occurs under *, /, %, or a builtin in ``expr``."""
    if isinstance(expr, ast.VarRef):
        return under and expr.name == name
    if isinstance(expr, ast.BinaryOp):
        nested = under or expr.op in ("*", "/", "%")
        return _var_under_mul(expr.left, name, nested) or _var_under_mul(
            expr.right, name, nested
        )
    if isinstance(expr, ast.UnaryOp):
        return _var_under_mul(expr.operand, name, under)
    if isinstance(expr, ast.Call):
        return any(_var_under_mul(a, name, True) for a in expr.args)
    if isinstance(expr, ast.Index):
        return _var_under_mul(expr.index, name, under)
    return False
