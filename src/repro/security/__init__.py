"""Security analysis (Section 3 of the paper).

Characterises each information leak point (ILP) of a split function by its
*arithmetic complexity* ``<Type, Inputs, Degree>`` on the lattice
``Constant ≺ Linear ≺ Polynomial ≺ Rational ≺ Arbitrary`` and its
*control-flow complexity* ``<Paths, Predicates, Flow>``, via the iterative
def-use propagation algorithm of Fig. 3.
"""

from repro.security.lattice import (
    AC,
    CType,
    TYPE_ORDER,
    VARYING,
    ac_max,
    ac_min,
    constant_ac,
    eval_binary,
    eval_builtin,
    eval_unary,
    linear_ac,
)
from repro.security.estimator import ILPComplexity, estimate_split_complexities
from repro.security.controlflow import CC, control_flow_complexity
from repro.security.report import ComplexityReport, analyze_split_security

__all__ = [
    "AC",
    "CC",
    "CType",
    "ComplexityReport",
    "ILPComplexity",
    "TYPE_ORDER",
    "VARYING",
    "ac_max",
    "ac_min",
    "analyze_split_security",
    "constant_ac",
    "control_flow_complexity",
    "estimate_split_complexities",
    "eval_binary",
    "eval_builtin",
    "eval_unary",
    "linear_ac",
]
