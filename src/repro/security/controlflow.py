"""Control flow complexity of ILPs (Section 3):

    CC(f_ILP) = <Paths, Predicates, Flow>

* ``Paths`` — number of static paths through the hidden computation feeding
  the ILP; a *runtime variable* when a loop with non-constant trip count is
  involved.
* ``Predicates`` — ``hidden`` when some predicate distinguishing those paths
  lives in the hidden component (either moved with a hidden construct or
  evaluated by a ``pred`` fragment).
* ``Flow`` — ``hidden`` when control constructs themselves moved to ``Hf``.
"""

from repro.lang import ast
from repro.analysis.loops import match_counted_loop
from repro.analysis.slicing import SliceKind
from repro.security.lattice import VARYING

_PATH_CAP = 1_000_000


class CC:
    """One ``<Paths, Predicates, Flow>`` triple."""

    __slots__ = ("paths", "predicates", "flow")

    def __init__(self, paths, predicates, flow):
        self.paths = paths  # int or VARYING
        self.predicates = predicates  # "open" | "hidden"
        self.flow = flow  # "open" | "hidden"

    @property
    def paths_variable(self):
        return self.paths == VARYING

    def __eq__(self, other):
        return (
            isinstance(other, CC)
            and self.paths == other.paths
            and self.predicates == other.predicates
            and self.flow == other.flow
        )

    def __hash__(self):
        return hash((self.paths, self.predicates, self.flow))

    def __repr__(self):
        paths = "variable" if self.paths == VARYING else str(self.paths)
        return "<%s, %s, %s>" % (paths, self.predicates, self.flow)


def control_flow_complexity(ilp, split, analysis):
    """Compute ``CC`` for one ILP of ``split``."""
    defs = _contributing_defs(ilp, split, analysis)
    constructs = _controlling_constructs(defs, ilp, split, analysis)

    predicates = "open"
    flow = "open"
    if ilp.kind == "pred":
        predicates = "hidden"
    for construct in constructs:
        if construct in split.hidden_constructs:
            predicates = "hidden"
            flow = "hidden"
        elif construct in split.pred_constructs:
            predicates = "hidden"
    # Flow is also (partially) hidden when the value is accumulated inside a
    # construct that moved to Hf even if the construct does not dominate the
    # ILP statement itself.
    for d in defs:
        if d.entry:
            continue
        if _inside_any(d.node.stmt, split.hidden_constructs):
            flow = "hidden"
            predicates = "hidden"

    paths = _count_paths(defs, constructs, split, analysis)
    return CC(paths, predicates, flow)


def _contributing_defs(ilp, split, analysis):
    """Hidden definitions transitively feeding the ILP's leaked value."""
    defuse = analysis.defuse
    cfg = analysis.cfg
    node = cfg.node_of_stmt.get(ilp.original_stmt)
    if node is None:
        return set()
    if ilp.leaked_var is not None:
        seed_names = [ilp.leaked_var]
    else:
        seed_names = [
            e.name for e in ast.walk_exprs(ilp.leaked_expr) if isinstance(e, ast.VarRef)
        ]
    seen = set()
    worklist = []
    for use in defuse.uses_at.get(node, []):
        if use.name in seed_names:
            worklist.extend(defuse.reaching_defs(use))
    while worklist:
        d = worklist.pop()
        if d in seen or d.entry:
            continue
        seen.add(d)
        for use in defuse.uses_at.get(d.node, []):
            worklist.extend(defuse.reaching_defs(use))
    hidden_exec = _hidden_exec_stmts(split)
    return {d for d in seen if d.node.stmt in hidden_exec}


def _hidden_exec_stmts(split):
    hidden = set()
    for stmt, kind in split.slice.statements.items():
        if kind == SliceKind.FULL:
            hidden.add(stmt)
    for construct in split.hidden_constructs:
        hidden.update(ast.walk_stmts([construct]))
        if isinstance(construct, ast.For):
            if construct.init is not None:
                hidden.add(construct.init)
            if construct.update is not None:
                hidden.add(construct.update)
    return hidden


def _controlling_constructs(defs, ilp, split, analysis):
    """Constructs whose predicates decide which contributing defs execute."""
    constructs = set()
    for d in defs:
        for branch in analysis.control_deps.get(d.node, ()):
            if branch.stmt is not None:
                constructs.add(branch.stmt)
    if ilp.construct is not None:
        constructs.add(ilp.construct)
    node = analysis.cfg.node_of_stmt.get(ilp.original_stmt)
    if node is not None:
        for branch in analysis.control_deps.get(node, ()):
            if branch.stmt is not None:
                constructs.add(branch.stmt)
    return constructs


def _inside_any(stmt, constructs):
    for construct in constructs:
        for s in ast.walk_stmts([construct]):
            if s is stmt:
                return True
    return False


def _count_paths(defs, constructs, split, analysis):
    """Static path count through the controlling constructs, or VARYING."""
    paths = 1
    for construct in constructs:
        if isinstance(construct, ast.If):
            paths = min(paths * 2, _PATH_CAP)
        elif isinstance(construct, (ast.While, ast.For)):
            trips = _constant_trip_count(construct)
            if trips is None:
                return VARYING
            paths = min(paths * max(trips, 1), _PATH_CAP)
    # A loop-accumulated value always multiplies paths, even when its loop
    # construct does not control the ILP node (the value escaped the loop).
    for d in defs:
        if d.entry:
            continue
        loop = _innermost_loop(analysis, d.node)
        if loop is not None and loop.stmt not in constructs:
            trips = _constant_trip_count(loop.stmt) if loop.stmt is not None else None
            if trips is None:
                return VARYING
            paths = min(paths * max(trips, 1), _PATH_CAP)
    return paths


def _innermost_loop(analysis, node):
    best = None
    for loop in analysis.loops:
        if loop.contains(node) and (best is None or len(loop.body) < len(best.body)):
            best = loop
    return best


def _constant_trip_count(construct):
    """Trip count when compile-time constant, else ``None``."""
    counted = match_counted_loop(construct)
    if counted is None:
        return None
    if not isinstance(counted.bound_expr, ast.IntLit):
        return None
    init = _constant_init(construct, counted.var)
    if init is None:
        return None
    bound = counted.bound_expr.value
    span = bound - init if counted.direction == "up" else init - bound
    if counted.relop in ("<=", ">="):
        span += 1
    if span <= 0:
        return 0
    return (span + counted.step - 1) // counted.step


def _constant_init(construct, var):
    if isinstance(construct, ast.For) and construct.init is not None:
        init = construct.init
        if isinstance(init, ast.VarDecl) and init.name == var:
            if isinstance(init.init, ast.IntLit):
                return init.init.value
        if (
            isinstance(init, ast.Assign)
            and isinstance(init.target, ast.VarRef)
            and init.target.name == var
            and isinstance(init.value, ast.IntLit)
        ):
            return init.value.value
    return None
