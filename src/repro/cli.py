"""Command-line interface.

::

    python -m repro run PROG.mj [--entry main] [--args 1 2 3]
    python -m repro split PROG.mj [--function f --var a] [--show-fragments]
    python -m repro run-split PROG.mj [--args ...] [--latency lan|card|instant]
    python -m repro analyze PROG.mj                 # Section 3 security report
    python -m repro table1 PROG.mj                  # self-contained analysis
    python -m repro attack PROG.mj --runs 40        # recovery attempts
    python -m repro stats PROG.mj --args 2 3        # telemetry snapshot
    python -m repro trace client.jsonl server.jsonl --out merged.json

``PROG.mj`` is a MiniJava source file (see README for the language).  When
``--function/--var`` are omitted, ``split`` uses the paper's automatic
selection (call-graph cut + max-complexity variable).

``run``, ``run-split`` and ``serve`` accept ``--metrics PATH``: telemetry
(:mod:`repro.obs`) is enabled for the whole command and the registry is
dumped to ``PATH`` as JSON at exit.  ``stats`` prints the same snapshot to
stdout in JSON or Prometheus text format.  ``--log-events PATH`` records
the per-event boundary stream (the flight recorder), ``--expo-port N``
serves live ``/metrics`` over HTTP for the duration, and ``audit`` joins
the recorded per-ILP traffic to the Section 3 complexity estimates (see
docs/OBSERVABILITY.md).  ``serve`` and ``run-split`` flush ``--metrics``/
``--log-events`` output on SIGINT/SIGTERM instead of dropping it.
"""

import argparse
import contextlib
import json
import signal
import sys

from repro.analysis.selfcontained import analyze_self_contained
from repro.bench.tables import Table
from repro.core.pipeline import prepare_split
from repro.lang import check_program, parse_program
from repro.core.splitter import SplitError
from repro.lang.errors import LangError
from repro.runtime.values import RuntimeErr
from repro.lang.pretty import pretty_function
from repro.runtime.channel import LatencyModel
from repro.runtime import DEFAULT_ENGINE, ENGINES
from repro.runtime.splitrun import check_equivalence, run_original, run_split
from repro.security.report import analyze_split_security

_LATENCIES = {
    "lan": LatencyModel.lan,
    "card": LatencyModel.smart_card,
    "instant": LatencyModel.instant,
}


def _load(path):
    with open(path) as f:
        source = f.read()
    program = parse_program(source)
    checker = check_program(program)
    return program, checker


def _parse_args_list(values):
    out = []
    for v in values:
        try:
            out.append(int(v))
        except ValueError:
            out.append(float(v))
    return tuple(out)


def _corpus_names():
    from repro.workloads.corpora import SPECS

    return sorted(SPECS)


def _split_for(program, checker, args):
    choices = None
    if args.function and args.var:
        choices = [(args.function, args.var)]
    return prepare_split(program, checker, choices=choices, entry=args.entry)


@contextlib.contextmanager
def _telemetry_session(args, out=None):
    """Enable telemetry for the wrapped command when any telemetry flag is
    present (``--metrics``, ``--log-events``, ``--expo-port``); no-op
    otherwise so un-flagged runs stay bit-identical.

    While active, the live exposition endpoint (``--expo-port``) serves the
    registry over HTTP.  At exit — including a SIGINT/SIGTERM delivered as
    :class:`KeyboardInterrupt` — the registry is dumped to ``--metrics`` as
    JSON and the flight recorder stream to ``--log-events``.

    Yields the live :class:`~repro.obs.httpexpo.ExpositionServer` (or
    ``None`` without ``--expo-port``) so commands can attach state the
    endpoint serves — ``serve`` wires its drain probe into ``/healthz``
    and its snapshot ring into ``/timeseries.json``."""
    metrics_path = getattr(args, "metrics", None)
    events_path = getattr(args, "log_events", None)
    expo_port = getattr(args, "expo_port", None)
    if metrics_path is None and events_path is None and expo_port is None:
        yield None
        return
    from repro import obs
    from repro.obs import export
    from repro.obs.events import FlightRecorder, write_events

    # the recorder's process name labels its row in merged Chrome traces
    # (repro trace): the serving side is the hidden component Hf, a remote
    # client run is the open component Of
    process = "repro"
    command = getattr(args, "command", None)
    if command == "serve":
        process = "Hf"
    elif getattr(args, "remote", None):
        process = "Of"
    recorder = FlightRecorder(process=process) if events_path else None
    with obs.telemetry(recorder=recorder) as (registry, tracer):
        expo = None
        try:
            if expo_port is not None:
                from repro.obs.httpexpo import ExpositionServer

                expo = ExpositionServer(registry, tracer, port=expo_port,
                                        recorder=recorder)
                host, port = expo.start()
                if out is not None:
                    print(
                        "metrics exposition on http://%s:%d/metrics" % (host, port),
                        file=out,
                    )
            yield expo
        finally:
            if expo is not None:
                expo.stop()
            if metrics_path:
                export.write_json(metrics_path, registry, tracer, recorder)
            if events_path:
                write_events(
                    events_path, recorder,
                    format=getattr(args, "log_events_format", "jsonl"),
                )


@contextlib.contextmanager
def _terminate_as_interrupt():
    """Deliver SIGTERM as :class:`KeyboardInterrupt` for the wrapped command
    so a plain ``kill`` drains the same finally blocks as Ctrl-C — telemetry
    sinks flush instead of dropping.  No-op outside the main thread."""

    def _raise(signum, frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # not the main thread (tests drive main() directly)
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def cmd_run(args, out):
    with _telemetry_session(args, out):
        program, _ = _load(args.file)
        result = run_original(program, entry=args.entry,
                              args=_parse_args_list(args.args),
                              engine=args.engine)
    for line in result.output:
        print(line, file=out)
    if result.value is not None:
        print("=> %r" % result.value, file=out)
    print("[%d statements executed]" % result.steps_open, file=out)
    return 0


def cmd_split(args, out):
    program, checker = _load(args.file)
    sp = _split_for(program, checker, args)
    if not sp.splits:
        print("nothing was split (no eligible function/variable)", file=out)
        return 1
    stats = sp.stats()
    for name, split in sorted(sp.splits.items()):
        print(split.describe(), file=out)
        s = stats[name]
        print(
            "  statements: %d original -> %d open + %d hidden; "
            "%d fragment params" % (
                s["original_stmts"], s["open_stmts"], s["hidden_stmts"],
                s["params_total"],
            ),
            file=out,
        )
        print(file=out)
        print("--- open component ---", file=out)
        print(pretty_function(split.open_fn), file=out)
        if args.show_fragments:
            print("--- hidden component ---", file=out)
            for label in sorted(split.fragments):
                print(split.fragments[label].describe(), file=out)
                print(file=out)
    return 0


def cmd_run_split(args, out):
    try:
        with _terminate_as_interrupt(), _telemetry_session(args, out):
            program, checker = _load(args.file)
            sp = _split_for(program, checker, args)
            run_args = _parse_args_list(args.args)
            batching = getattr(args, "batching", "off") == "on"
            engine = getattr(args, "engine", DEFAULT_ENGINE)
            cache = getattr(args, "cache", "off") == "on"
            trace = getattr(args, "trace", False)
            if trace and not args.remote:
                print(
                    "error: --trace requires --remote (the in-process "
                    "channel has no wire to trace)", file=out,
                )
                return 2
            if args.remote:
                from repro.runtime.remote import run_split_remote

                host, _, port = args.remote.rpartition(":")
                result = run_split_remote(sp, (host or "127.0.0.1", int(port)),
                                          entry=args.entry, args=run_args,
                                          batching=batching, engine=engine,
                                          trace=trace,
                                          program=getattr(args, "program",
                                                          None),
                                          cache=cache)
                for line in result.output:
                    print(line, file=out)
                print(
                    "[ran against remote hidden component; %d real round trips]"
                    % result.interactions,
                    file=out,
                )
                if trace:
                    sync = result.trace_sync or {}
                    if sync.get("offset_us") is not None:
                        print(
                            "[traced; clock offset %+.1f us, skew bound "
                            "%.1f us]" % (sync["offset_us"],
                                          sync["skew_bound_us"]),
                            file=out,
                        )
                    else:
                        print(
                            "[traced; server did not answer the clock "
                            "handshake]", file=out,
                        )
                return 0
            check_equivalence(program, sp, entry=args.entry, args=run_args,
                              engine=engine)
            latency = _LATENCIES[args.latency]()
            result = run_split(sp, entry=args.entry, args=run_args,
                               latency=latency, batching=batching,
                               engine=engine, cache=cache)
            for line in result.output:
                print(line, file=out)
            summary = result.channel.transcript.summary()
            print(
                "[split verified equivalent; %d interactions, %.2f ms channel "
                "time, %d open + %d hidden statements]"
                % (
                    summary["round_trips"],
                    summary["simulated_ms"],
                    result.steps_open,
                    result.steps_hidden,
                ),
                file=out,
            )
            return 0
    except KeyboardInterrupt:
        print("[interrupted; telemetry flushed]", file=out)
        return 130


def cmd_analyze(args, out):
    program, checker = _load(args.file)
    sp = _split_for(program, checker, args)
    if not sp.splits:
        print("nothing was split (no eligible function/variable)", file=out)
        return 1
    report = analyze_split_security(sp, checker, args.file)
    table = Table("ILP security characterisation", ["ILP", "kind", "AC", "CC"])
    for c in report.complexities:
        table.add_row(str(c.ilp), c.ilp.kind, str(c.ac), str(c.cc))
    print(table.render(), file=out)
    print(file=out)
    print("type histogram: %r" % report.type_histogram(), file=out)
    print(
        "paths variable: %d   predicates hidden: %d   flow hidden: %d"
        % (
            report.paths_variable_count(),
            report.predicates_hidden_count(),
            report.flow_hidden_count(),
        ),
        file=out,
    )
    return 0


def cmd_lint(args, out):
    from repro.analysis.function import analyze_function
    from repro.analysis.lint import diagnose_split, lint_program
    from repro.security.estimator import estimate_split_complexities

    program, checker = _load(args.file)
    findings = lint_program(program)
    if args.split:
        sp = _split_for(program, checker, args)
        for name, split in sorted(sp.splits.items()):
            fn = program.function(name)
            analysis = analyze_function(fn, checker)
            results = estimate_split_complexities(split, analysis)
            findings.extend(diagnose_split(split, results))
    if not findings:
        print("no findings", file=out)
        return 0
    for f in findings:
        print("%-22s %-20s %s" % (f.kind, f.where, f.message), file=out)
    return 1


def _load_tenants(manifests):
    """Parse serve's manifest arguments into Tenant registrations.

    Each argument is ``PATH`` or ``NAME=PATH``; without an explicit name
    the file's stem names the program.  The first manifest is the daemon's
    default program (docs/OPERATIONS.md)."""
    import os

    from repro.core.deploy import import_split
    from repro.runtime.server import Tenant

    tenants = []
    seen = set()
    for spec in manifests:
        name, sep, path = spec.partition("=")
        if not sep:
            name, path = "", spec
        if not name:
            name = os.path.splitext(os.path.basename(path))[0]
        if name in seen:
            raise ValueError("duplicate program name %r" % name)
        seen.add(name)
        with open(path) as f:
            tenants.append(Tenant.from_program(name, import_split(f.read())))
    return tenants


def cmd_serve(args, out):
    from repro.runtime.remote import HiddenComponentServer

    snapshot_interval = getattr(args, "snapshot_interval", None)
    if snapshot_interval is not None:
        if getattr(args, "expo_port", None) is None:
            print("error: --snapshot-interval requires --expo-port (the "
                  "ring is served at /timeseries.json)", file=out)
            return 2
        if snapshot_interval <= 0:
            print("error: --snapshot-interval must be positive", file=out)
            return 2
    with _terminate_as_interrupt(), _telemetry_session(args, out) as expo:
        server = HiddenComponentServer(
            tenants=_load_tenants(args.manifest),
            host=args.host,
            port=args.port,
            engine=getattr(args, "engine", DEFAULT_ENGINE),
            max_sessions=getattr(args, "max_sessions", None),
            idle_timeout_s=getattr(args, "idle_timeout", None),
            cache=getattr(args, "cache", "on") == "on",
            cache_quota=getattr(args, "cache_quota", None),
        )
        collector = None
        if expo is not None:
            # /healthz now reports the daemon's drain state, so probes and
            # loadgen can tell a SIGTERM'd daemon from a live one
            expo.health = (
                lambda: "draining" if server._draining.is_set() else "ok"
            )
            if snapshot_interval is not None:
                from repro.obs.timeseries import SnapshotCollector, TimeSeries

                series = TimeSeries(interval_s=snapshot_interval)
                expo.timeseries = series
                collector = SnapshotCollector(
                    expo.registry, series, tracer=expo.tracer,
                    recorder=expo.recorder,
                    extra_fn=lambda: {"health": expo.health()},
                ).start()
        print("hidden component serving on %s:%d" % server.address, file=out)
        print("programs: %s" % ", ".join(server.programs), file=out)
        # SIGTERM drains gracefully: stop accepting, finish in-flight
        # calls, then fall through to the telemetry flush.  SIGINT (and a
        # second SIGTERM) still aborts immediately via KeyboardInterrupt.
        def _drain(signum, frame):
            signal.signal(signal.SIGTERM, previous)
            server.drain()

        try:
            previous = signal.signal(signal.SIGTERM, _drain)
        except ValueError:  # not the main thread (tests drive main())
            previous = None
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if collector is not None:
                collector.stop()
            server.shutdown()
            if previous is not None:
                with contextlib.suppress(ValueError):
                    signal.signal(signal.SIGTERM, previous)
    return 0


def cmd_loadgen(args, out):
    from repro.loadgen import harness, replay

    with _terminate_as_interrupt(), _telemetry_session(args, out):
        script = replay.load_script(args.log)
        slo = harness.parse_slo(args.slo) if args.slo else None
        host, _, port = args.address.rpartition(":")
        report = harness.run_loadgen(
            (host or "127.0.0.1", int(port)), script,
            clients=args.clients, iterations=args.iterations,
            mode=args.mode, program=args.program,
            think_scale=args.think_scale, seed=args.seed,
            timeout_s=args.timeout, slo=slo, scrape=args.scrape,
            cache=getattr(args, "cache", "off") == "on",
        )
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
        print("wrote %s" % args.output, file=out)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print(harness.render_report(report), file=out)
    if args.fail_over_slo:
        if not harness.slo_ok(report):
            return 1
        if report["errors"]["protocol"]:
            # a gated run must not pass on the back of failed sessions
            return 1
    return 0


def cmd_stats(args, out):
    """Split + run under telemetry, then print the metrics snapshot."""
    from repro import obs
    from repro.obs import export

    recorder = None
    if getattr(args, "log_events", None):
        from repro.obs.events import FlightRecorder

        recorder = FlightRecorder()
    program, checker = _load(args.file)
    run_args = _parse_args_list(args.args)
    with obs.telemetry(recorder=recorder) as (registry, tracer):
        sp = _split_for(program, checker, args)
        if sp.splits:
            latency = _LATENCIES[args.latency]()
            run_split(sp, entry=args.entry, args=run_args, latency=latency,
                      batching=getattr(args, "batching", "off") == "on",
                      engine=getattr(args, "engine", DEFAULT_ENGINE))
        else:
            run_original(program, entry=args.entry, args=run_args,
                         engine=getattr(args, "engine", DEFAULT_ENGINE))
    if recorder is not None:
        from repro.obs.events import write_events

        write_events(args.log_events, recorder,
                     format=getattr(args, "log_events_format", "jsonl"))
    if args.format == "prometheus":
        print(export.to_prometheus(registry), file=out, end="")
    else:
        print(export.to_json(registry, tracer), file=out)
    return 0


def cmd_audit(args, out):
    """Run under full telemetry, then join observed per-ILP channel traffic
    to the Section 3 complexity estimates and check leak budgets."""
    from repro import obs
    from repro.obs.audit import audit_split, render_report
    from repro.obs.events import FlightRecorder

    if bool(args.corpus) == bool(args.file):
        print("error: audit needs a source file or --corpus (not both)", file=out)
        return 2
    if args.corpus:
        from repro.workloads.corpora import build_corpus

        corpus = build_corpus(args.corpus, scale=args.scale)
        program, checker = corpus.program, corpus.checker
    else:
        program, checker = _load(args.file)
    run_args = _parse_args_list(args.args)
    recorder = FlightRecorder()
    with obs.telemetry(recorder=recorder) as (registry, _tracer):
        sp = _split_for(program, checker, args)
        if not sp.splits:
            print("nothing was split (no eligible function/variable)", file=out)
            return 1
        latency = _LATENCIES[args.latency]()
        run_split(sp, entry=args.entry, args=run_args, latency=latency,
                  batching=getattr(args, "batching", "off") == "on",
                  engine=getattr(args, "engine", DEFAULT_ENGINE))
    report = audit_split(sp, checker, registry, recorder, budget=args.budget)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(render_report(report), file=out)
    if args.fail_over_budget and report.over_budget():
        return 1
    return 0


def cmd_profile(args, out):
    """Sample a run's stacks and attribute time per (function/fragment,
    engine, side); with --deopts, print why codegen bailed instead."""
    from repro import obs
    from repro.obs import profile as profmod
    from repro.obs.events import FlightRecorder

    if bool(args.corpus) == bool(args.file):
        print("error: profile needs a source file or --corpus (not both)",
              file=out)
        return 2
    if args.corpus:
        from repro.workloads.corpora import build_corpus

        corpus = build_corpus(args.corpus, scale=args.scale)
        program, checker = corpus.program, corpus.checker
    else:
        program, checker = _load(args.file)
    run_args = _parse_args_list(args.args)
    engine = getattr(args, "engine", DEFAULT_ENGINE)
    batching = getattr(args, "batching", "off") == "on"
    recorder = FlightRecorder()
    runs = 0
    with obs.telemetry(recorder=recorder) as (registry, _tracer):
        sp = None
        if not args.original:
            sp = _split_for(program, checker, args)
            if not sp.splits:
                print("nothing was split (no eligible function/variable); "
                      "use --original to profile the unsplit program",
                      file=out)
                return 1
        latency = _LATENCIES[args.latency]()
        sampler = profmod.StackSampler(interval_s=args.interval / 1000.0)
        # repeat the run until enough wall time was sampled — one corpus
        # run is often shorter than a statistically useful sample window
        with sampler:
            while True:
                if sp is not None:
                    run_split(sp, entry=args.entry, args=run_args,
                              latency=latency, batching=batching,
                              engine=engine)
                else:
                    run_original(program, entry=args.entry, args=run_args,
                                 engine=engine)
                runs += 1
                if sampler.elapsed_s() >= args.min_duration:
                    break
    prof = sampler.result
    deopts = profmod.deopt_report(registry, recorder)
    if args.deopts:
        if args.format == "json":
            print(json.dumps(deopts, indent=2, sort_keys=True), file=out)
        else:
            print(profmod.render_deopt_report(deopts), file=out)
        return 0
    if args.format == "collapsed":
        text = prof.to_collapsed()
    elif args.format == "json":
        doc = {
            "engine": engine,
            "runs": runs,
            "profile": prof.to_dict(),
            "deopts": deopts,
        }
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    else:
        text = prof.report(top=args.top) + "\n"
        if deopts["total"]:
            text += ("  %d codegen deopt(s) recorded — repro profile "
                     "--deopts ranks them\n" % deopts["total"])
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print("wrote %s" % args.output, file=out)
    else:
        print(text, file=out, end="")
    return 0


def cmd_top(args, out):
    """Render a daemon's /timeseries.json ring as a terminal dashboard."""
    import time as _time
    import urllib.parse
    import urllib.request

    from repro.obs import timeseries as ts

    is_url = args.source.startswith(("http://", "https://"))

    def fetch():
        if is_url:
            url = args.source
            if not url.endswith("/timeseries.json"):
                url = urllib.parse.urljoin(url, "/timeseries.json")
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                return json.loads(resp.read().decode("utf-8"))
        with open(args.source) as f:
            return json.load(f)

    try:
        if args.once or not is_url:
            print(ts.render_top(fetch()), file=out)
            return 0
        while True:
            # ANSI clear + home, then the frame — a plain-terminal `top`
            print("\x1b[2J\x1b[H" + ts.render_top(fetch()), file=out,
                  flush=True)
            _time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print("error: cannot read %s: %s" % (args.source, exc), file=out)
        return 2


def cmd_graph(args, out):
    from repro.analysis.dot import callgraph_to_dot, cfg_to_dot, ddg_to_dot, split_to_dot
    from repro.analysis.callgraph import build_callgraph
    from repro.analysis.function import analyze_function

    program, checker = _load(args.file)
    if args.kind == "callgraph":
        print(callgraph_to_dot(build_callgraph(program, checker)), file=out)
        return 0
    if not args.function:
        print("error: --function is required for %s graphs" % args.kind, file=out)
        return 2
    fn = program.function(args.function)
    if args.kind == "split":
        sp = _split_for(program, checker, args)
        split = sp.splits.get(fn.qualified_name)
        if split is None:
            print("error: %s was not split" % args.function, file=out)
            return 1
        print(split_to_dot(split), file=out)
        return 0
    analysis = analyze_function(fn, checker)
    if args.kind == "cfg":
        print(cfg_to_dot(analysis.cfg), file=out)
    else:
        print(ddg_to_dot(analysis.ddg), file=out)
    return 0


def cmd_export(args, out):
    from repro.core.deploy import export_split_json

    program, checker = _load(args.file)
    sp = _split_for(program, checker, args)
    if not sp.splits:
        print("nothing was split", file=out)
        return 1
    text = export_split_json(sp)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print("wrote %s (%d bytes)" % (args.output, len(text)), file=out)
    else:
        print(text, file=out)
    return 0


def cmd_table1(args, out):
    program, _ = _load(args.file)
    report = analyze_self_contained(program, args.file)
    table = Table("Self-contained method analysis (Table 1)", ["Metric", "Count"])
    for label, count in report.rows():
        table.add_row(label, count)
    print(table.render(), file=out)
    return 0


def cmd_attack(args, out):
    import random

    from repro.attack.driver import attack_split_program

    program, checker = _load(args.file)
    sp = _split_for(program, checker, args)
    if not sp.splits:
        print("nothing was split", file=out)
        return 1
    entry_fn = program.function(args.entry)
    rng = random.Random(args.seed)
    runs = [
        tuple(rng.randint(-9, 9) for _ in entry_fn.params) for _ in range(args.runs)
    ]
    outcomes = attack_split_program(sp, runs, entry=args.entry)
    table = Table(
        "Recovery attempts", ["Fragment", "Outcome", "Technique", "Samples"]
    )
    for (fn_name, label), outcome in sorted(outcomes.items()):
        win = outcome.winning
        table.add_row(
            "%s#%d" % (fn_name, label),
            "BROKEN" if outcome.broken else "resisted",
            win.technique if win else "-",
            win.samples_used if win else len(outcome.trace),
        )
    print(table.render(), file=out)
    return 0


def cmd_trace(args, out):
    """Merge traced client/server event streams; print the attribution."""
    from repro.obs import traceview

    client_events = traceview.load_events(args.client)
    server_events = (
        traceview.load_events(args.server) if args.server else None
    )
    if args.out:
        doc = traceview.merge_chrome(client_events, server_events)
        with open(args.out, "w") as f:
            json.dump(doc, f, sort_keys=True)
            f.write("\n")
        print(
            "wrote %s (%d trace events%s)"
            % (args.out, len(doc["traceEvents"]),
               "" if doc["otherData"]["aligned"] else "; clocks unaligned"),
            file=out,
        )
    report = traceview.attribution(client_events)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True), file=out)
    elif report["rows"]:
        print(traceview.render_attribution(report), file=out, end="")
    else:
        print(
            "no traced round trips in %s (was the run made with --trace?)"
            % args.client, file=out,
        )
    return 0


def cmd_fuzz(args, out):
    """Differential fuzzing: generated programs through the config matrix."""
    from repro.fuzz import campaign, oracle, selfcheck

    try:
        configs = oracle.select_configs(args.configs)
    except ValueError as exc:
        print("error: %s" % exc, file=out)
        return 2

    with _telemetry_session(args, out):
        if args.self_check:
            plant = getattr(args, "plant", "engine")
            report = selfcheck.run_selfcheck(seed=args.seed, configs=configs,
                                             plant=plant)
            print(
                "self-check: planted %s bug, fuzzed %d program(s)"
                % (plant, report.programs_tried), file=out)
            if not report.caught:
                print("self-check FAILED: planted bug was not caught", file=out)
                return 1
            print("caught at seed %d:" % report.seed, file=out)
            for d in report.divergences[:6]:
                print("  %s" % d.describe(), file=out)
            print(
                "minimized repro (%d lines, clean without the bug: %s):"
                % (report.minimized_lines, report.clean_without_bug), file=out)
            for line in report.minimized.splitlines():
                print("  | %s" % line, file=out)
            print("self-check %s" % ("PASSED" if report.passed else "FAILED"),
                  file=out)
            return 0 if report.passed else 1

        if args.replay:
            result = campaign.replay_file(args.replay, configs=configs)
            print("replayed %s (args: %s; split: %s)" % (
                args.replay,
                " / ".join(str(a) for a in result.arg_sets),
                result.split_summary or "none"), file=out)
            for d in result.divergences:
                print("  DIVERGENCE %s" % d.describe(), file=out)
            print("divergences: %d" % len(result.divergences), file=out)
            return 1 if result.diverged else 0

        def progress(res):
            if res.programs % 25 == 0:
                print("  ... %d programs, %d divergent, %d unsplit"
                      % (res.programs, res.divergent, res.unsplit), file=out)

        runs = args.runs
        if runs is None and args.time_budget is None:
            runs = 100
        result = campaign.run_campaign(
            seed=args.seed, runs=runs, time_budget=args.time_budget,
            jobs=args.jobs, configs=configs,
            minimize_divergences=args.minimize, corpus_dir=args.corpus_dir,
            progress=progress if runs is None or runs > 25 else None)
        print(
            "fuzzed %d program(s) in %.1fs across %d config(s) "
            "[seed %d; %d unsplit]"
            % (result.programs, result.elapsed_s, len(configs), args.seed,
               result.unsplit), file=out)
        for seed_, matrix in result.findings:
            print("  seed %d [%s]:" % (seed_, matrix.split_summary), file=out)
            for d in matrix.divergences[:4]:
                print("    DIVERGENCE %s" % d.describe(), file=out)
        for path in result.repro_paths:
            print("  minimized repro: %s" % path, file=out)
        print("divergent programs: %d" % result.divergent, file=out)
        return 0 if result.ok else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Slicing-based software splitting (Zhang & Gupta, CGO 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_selection=True):
        p.add_argument("file", help="MiniJava source file")
        p.add_argument("--entry", default="main", help="entry function")
        if with_selection:
            p.add_argument("--function", help="function to split (with --var)")
            p.add_argument("--var", help="hidden variable (with --function)")

    def metrics_flag(p):
        p.add_argument(
            "--metrics", metavar="PATH",
            help="enable telemetry and dump the metrics registry (JSON) here at exit",
        )

    def events_flags(p):
        from repro.obs.events import EVENT_FORMATS

        p.add_argument(
            "--log-events", metavar="PATH", dest="log_events",
            help="enable the flight recorder and write the boundary event "
            "stream here at exit (docs/OBSERVABILITY.md)",
        )
        p.add_argument(
            "--log-events-format", choices=list(EVENT_FORMATS),
            default="jsonl", dest="log_events_format",
            help="event stream format: 'jsonl' (one JSON object per line) "
            "or 'chrome' (about://tracing trace-event file)",
        )

    def expo_flag(p):
        p.add_argument(
            "--expo-port", type=int, metavar="PORT", dest="expo_port",
            help="serve live /metrics, /metrics.json, /healthz, /spans "
            "and /timeseries.json over HTTP on this port for the duration "
            "(0 picks a free port)",
        )

    def batching_flag(p):
        p.add_argument(
            "--batching", choices=["on", "off"], default="off",
            help="communication optimisation layer: coalesce one-way "
            "messages and batch open-memory callbacks (docs/PROTOCOL.md); "
            "off reproduces the paper's one-message-per-interaction model",
        )

    def engine_flag(p):
        p.add_argument(
            "--engine", choices=list(ENGINES), default=DEFAULT_ENGINE,
            help="execution engine (docs/ENGINE.md): 'compiled' lowers "
            "bodies to closures once and runs them, 'codegen' emits real "
            "Python source per function/fragment, 'ast' walks the tree; "
            "observable behaviour is bit-identical",
        )

    def cache_flag(p, default="off"):
        p.add_argument(
            "--cache", choices=["on", "off"], default=default,
            help="hidden-side fragment result cache (docs/CACHING.md): "
            "memoize pure fragment executions, invalidated on every "
            "hidden-store write; results, steps, and channel traffic "
            "are bit-identical either way (default: %s)" % default,
        )

    p = sub.add_parser("run", help="run a program unmodified")
    common(p, with_selection=False)
    p.add_argument("--args", nargs="*", default=[], help="entry arguments")
    engine_flag(p)
    metrics_flag(p)
    events_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("split", help="split and show both components")
    common(p)
    p.add_argument("--show-fragments", action="store_true")
    p.set_defaults(fn=cmd_split)

    p = sub.add_parser("run-split", help="split, verify, and run over the channel")
    common(p)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--latency", choices=sorted(_LATENCIES), default="lan")
    p.add_argument("--remote", help="host:port of a served hidden component")
    p.add_argument(
        "--program",
        help="named program (tenant) to bind to on a multi-tenant daemon "
        "(with --remote; default: the daemon's default program)",
    )
    p.add_argument(
        "--trace", action="store_true",
        help="stamp every frame with trace context and measure the "
        "serialize/wire/exec/deser phase split per round trip (remote "
        "runs only; docs/PROTOCOL.md)",
    )
    batching_flag(p)
    engine_flag(p)
    cache_flag(p)
    metrics_flag(p)
    events_flags(p)
    expo_flag(p)
    p.set_defaults(fn=cmd_run_split)

    p = sub.add_parser("analyze", help="Section 3 security characterisation")
    common(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("lint", help="hygiene and protection-quality diagnostics")
    common(p)
    p.add_argument("--split", action="store_true",
                   help="also diagnose the split's protection quality")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "serve",
        help="serve hidden components from export manifests (a multi-"
        "tenant daemon; docs/OPERATIONS.md)",
    )
    p.add_argument(
        "manifest", nargs="+",
        help="manifest JSON from 'export'; repeatable, each optionally "
        "NAME=PATH to name the program (default: the file stem); the "
        "first manifest is the default program",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument(
        "--max-sessions", type=int, metavar="N", dest="max_sessions",
        help="connection limit: refuse new connections (retryable error "
        "frame) beyond this many live sessions",
    )
    p.add_argument(
        "--idle-timeout", type=float, metavar="SECONDS", dest="idle_timeout",
        help="close sessions whose connection stays silent longer than this",
    )
    p.add_argument(
        "--snapshot-interval", type=float, metavar="SECONDS",
        dest="snapshot_interval",
        help="record a metrics-registry snapshot into a bounded ring every "
        "SECONDS and serve it at /timeseries.json (requires --expo-port; "
        "consumed by 'repro top' and loadgen soak reports)",
    )
    engine_flag(p)
    # the daemon grants caching per session; clients still opt in with
    # their own --cache on, so serving with the default costs nothing
    cache_flag(p, default="on")
    p.add_argument(
        "--cache-quota", type=int, metavar="ENTRIES", dest="cache_quota",
        help="per-tenant cap on cached fragment results, shared across "
        "all of the tenant's sessions (default: unbounded tenants, "
        "each session individually LRU-bounded)",
    )
    metrics_flag(p)
    events_flags(p)
    expo_flag(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="replay a flight-recorder log as N concurrent synthetic "
        "clients against a served daemon (docs/OPERATIONS.md)",
    )
    p.add_argument(
        "log",
        help="flight-recorder jsonl (--log-events output) to replay; "
        "server-side logs replay with full fidelity",
    )
    p.add_argument("--address", required=True, metavar="HOST:PORT",
                   help="address of the serving daemon")
    p.add_argument("--program", help="named program (tenant) to bind to")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent synthetic clients (default: 8)")
    p.add_argument("--iterations", type=int, default=1,
                   help="script repetitions per client (default: 1)")
    p.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed-loop replays back-to-back; open-loop sleeps the "
        "log's recorded think times between ops",
    )
    p.add_argument(
        "--think-scale", type=float, default=1.0, dest="think_scale",
        metavar="FACTOR",
        help="open-loop think-time multiplier (default: 1.0)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the open-loop think-time jitter")
    p.add_argument("--timeout", type=float, default=10.0, metavar="SECONDS",
                   help="per-read client socket timeout")
    p.add_argument(
        "--scrape", metavar="URL",
        help="scrape this live /metrics.json endpoint before and after "
        "the run (plus the /timeseries.json ring covering the run, when "
        "the daemon serves one) and include the daemon's per-program "
        "counters in the report",
    )
    p.add_argument(
        "--slo", metavar="PCT=LIMIT,...",
        help="latency gate over the merged round-trip latencies, "
        "e.g. 'p95=250ms,p99=1s'",
    )
    p.add_argument(
        "--fail-over-slo", action="store_true", dest="fail_over_slo",
        help="exit 1 when any --slo percentile is exceeded or any "
        "session hit a protocol error",
    )
    p.add_argument("--output", metavar="PATH",
                   help="write the machine-readable report (JSON) here")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default: text)")
    cache_flag(p)
    metrics_flag(p)
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "stats", help="run under telemetry and print the metrics snapshot"
    )
    common(p)
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--latency", choices=sorted(_LATENCIES), default="lan")
    batching_flag(p)
    engine_flag(p)
    p.add_argument(
        "--format", choices=["json", "prometheus"], default="json",
        help="exposition format (default: json)",
    )
    events_flags(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "audit",
        help="run under telemetry and audit per-ILP leak budgets "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument("file", nargs="?", help="MiniJava source file (or use --corpus)")
    p.add_argument("--corpus", choices=_corpus_names(),
                   help="audit a generated Table 5 evaluation corpus instead "
                   "of a source file")
    p.add_argument("--scale", type=float, default=1.0,
                   help="corpus population scale (with --corpus)")
    p.add_argument("--entry", default="main", help="entry function")
    p.add_argument("--function", help="function to split (with --var)")
    p.add_argument("--var", help="hidden variable (with --function)")
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--latency", choices=sorted(_LATENCIES), default="lan")
    batching_flag(p)
    engine_flag(p)
    p.add_argument(
        "--budget", type=int,
        help="uniform leak budget (observed values per ILP); default: "
        "per-complexity-class budgets",
    )
    p.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="report format (default: table)",
    )
    p.add_argument(
        "--fail-over-budget", action="store_true", dest="fail_over_budget",
        help="exit 1 when any ILP exceeds its budget",
    )
    p.set_defaults(fn=cmd_audit)

    from repro.obs.profile import PROFILE_FORMATS

    p = sub.add_parser(
        "profile",
        help="sample a run's stacks and attribute time per function/"
        "fragment, engine, and side (docs/OBSERVABILITY.md)",
    )
    p.add_argument("file", nargs="?",
                   help="MiniJava source file (or use --corpus)")
    p.add_argument("--corpus", choices=_corpus_names(),
                   help="profile a generated Table 5 evaluation corpus "
                   "instead of a source file")
    p.add_argument("--scale", type=float, default=1.0,
                   help="corpus population scale (with --corpus)")
    p.add_argument("--entry", default="main", help="entry function")
    p.add_argument("--function", help="function to split (with --var)")
    p.add_argument("--var", help="hidden variable (with --function)")
    p.add_argument("--args", nargs="*", default=[])
    p.add_argument("--latency", choices=sorted(_LATENCIES), default="lan")
    batching_flag(p)
    engine_flag(p)
    p.add_argument(
        "--original", action="store_true",
        help="profile the unsplit program (what 'run' executes) instead "
        "of the split run",
    )
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="MS",
        help="sampling interval in milliseconds (default: 1.0)",
    )
    p.add_argument(
        "--min-duration", type=float, default=0.5, metavar="SECONDS",
        dest="min_duration",
        help="repeat the run until at least this much wall time was "
        "sampled (default: 0.5)",
    )
    p.add_argument("--top", type=int, default=25,
                   help="rows shown in the text report (default: 25)")
    p.add_argument(
        "--deopts", action="store_true",
        help="print the ranked 'why codegen bailed' deopt attribution "
        "(reason-labelled counter joined with per-site deopt events) "
        "instead of the time profile",
    )
    p.add_argument(
        "--format", choices=list(PROFILE_FORMATS), default="text",
        help="'text' (ranked table), 'json' (profile + deopt document), "
        "or 'collapsed' (speedscope / flamegraph.pl stack lines)",
    )
    p.add_argument("--output", metavar="PATH",
                   help="write the report here instead of stdout")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a daemon's /timeseries.json "
        "ring (docs/OPERATIONS.md)",
    )
    p.add_argument(
        "source",
        help="daemon exposition URL (http://host:port, from serve "
        "--expo-port --snapshot-interval) or a saved /timeseries.json "
        "document (rendered once)",
    )
    p.add_argument(
        "--refresh", type=float, default=2.0, metavar="SECONDS",
        help="redraw interval when following a URL (default: 2.0)",
    )
    p.add_argument("--once", action="store_true",
                   help="render one frame and exit (file sources always do)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("graph", help="emit DOT graphs (cfg/ddg/callgraph/split)")
    common(p)
    p.add_argument("--kind", choices=["cfg", "ddg", "callgraph", "split"], default="cfg")
    p.set_defaults(fn=cmd_graph)

    p = sub.add_parser("export", help="write the deployment manifest (JSON)")
    common(p)
    p.add_argument("--output", "-o", help="output file (default: stdout)")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("table1", help="self-contained method analysis")
    common(p, with_selection=False)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser("attack", help="attempt automated recovery of the ILPs")
    common(p)
    p.add_argument("--runs", type=int, default=40)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser(
        "trace",
        help="merge traced client/server --log-events streams into one "
        "Chrome trace and print the latency attribution "
        "(docs/OBSERVABILITY.md)",
    )
    p.add_argument("client", help="client --log-events jsonl (the Of side)")
    p.add_argument("server", nargs="?",
                   help="server --log-events jsonl (the Hf side); omit for "
                   "a client-only report")
    p.add_argument("--out", metavar="PATH",
                   help="write the merged Chrome/Perfetto trace-event "
                   "document here")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="attribution report format (default: text)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing across the execution-config matrix "
        "(docs/TESTING.md)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="first generator seed (seeds walk upward from here)")
    p.add_argument("--runs", type=int, default=None,
                   help="number of programs to fuzz (default 100, or "
                   "unlimited when --time-budget is set; with both, "
                   "whichever limit hits first wins)")
    p.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                   dest="time_budget",
                   help="stop after this many seconds instead of a fixed "
                   "--runs count")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker threads fuzzing seeds concurrently")
    p.add_argument("--configs", default=None, metavar="A,B,...",
                   help="comma-separated configuration subset (default: all; "
                   "see docs/TESTING.md for the matrix)")
    p.add_argument("--minimize", action="store_true",
                   help="delta-debug each diverging program to a minimal "
                   ".mj repro in the corpus directory")
    p.add_argument("--corpus-dir", default="tests/fuzz_corpus",
                   dest="corpus_dir",
                   help="where minimized repros are written")
    p.add_argument("--self-check", action="store_true", dest="self_check",
                   help="plant a known bug and verify the fuzzer catches, "
                   "minimizes, and clears it")
    p.add_argument("--plant", choices=["engine", "stale-cache"],
                   default="engine",
                   help="which bug --self-check plants: 'engine' perturbs "
                   "hidden int results (any split cell catches it), "
                   "'stale-cache' skips cache invalidation (only the "
                   "cache-on cells can; docs/CACHING.md)")
    p.add_argument("--replay", metavar="FILE.mj",
                   help="re-run one corpus repro through the oracle instead "
                   "of fuzzing")
    metrics_flag(p)
    p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv=None, out=None):
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args, out)
    except LangError as exc:
        print("error: %s" % exc, file=out)
        return 2
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=out)
        return 2
    except (SplitError, RuntimeErr, ValueError) as exc:
        print("error: %s" % exc, file=out)
        return 2


if __name__ == "__main__":
    sys.exit(main())
