"""Table 1: opportunities for constructing hidden components from whole
methods.

Paper claim: real programs have thousands of methods but almost none are
self-contained, large, and non-initializer — whole-method hiding is not a
practical strategy.  The corpora reproduce the populations exactly at full
scale.
"""

from repro.bench.experiments import PAPER_TABLE1, run_table1


def test_table1_self_contained_methods(once):
    result = once(run_table1, scale=1.0)
    print("\n" + result.render())
    for name, (total, sc, large, non_init) in result.data.items():
        paper = PAPER_TABLE1[name]
        assert total == paper[0], "method population must match the paper"
        assert sc == paper[1]
        assert large == paper[2]
        assert non_init == paper[3]
        # the paper's conclusion: a vanishing fraction qualifies
        assert sc / total < 0.02
        assert non_init <= 8
