"""Fig. 3: the ILP complexity estimation algorithm on the paper's modified
example — exercising the ``LeakedDefn`` (definite leak) rule and the
``RAISE``/``Iter(L)`` rule.
"""

from repro.bench.experiments import run_fig3_experiment
from repro.lang import ast
from repro.security.lattice import CType


def test_fig3_estimator_example(once):
    result = once(run_fig3_experiment)
    print("\n" + result.render())
    complexities = result.data["complexities"]

    # B[0] = a definitely leaks the hidden definition a = 3x + y: the
    # estimator reports the defining expression's complexity (Linear in x,y)
    leak = [
        c
        for c in complexities
        if isinstance(c.ilp.leaked_expr, ast.VarRef) and c.ilp.leaked_expr.name == "a"
    ][0]
    assert leak.ac.type == CType.LINEAR
    assert leak.ac.inputs == frozenset({"x", "y"})

    # downstream, `a` counts as an observable input and the accumulated sum
    # raises to Polynomial degree 2 through the hidden counted loop
    ret = [c for c in complexities if c.ilp.kind == "return"][0]
    assert ret.ac.type == CType.POLYNOMIAL
    assert ret.ac.degree == 2
    assert "a" in ret.ac.inputs
