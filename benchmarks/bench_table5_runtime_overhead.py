"""Table 5: runtime overhead caused by software splitting.

Paper shape: overhead between 3% and 58%, growing with the number of
component interactions relative to the base runtime; absolute times come
from the paper's calibrated baseline (see repro.workloads.inputs).  The
reproduction also verifies that every split run produces output identical
to the original.
"""

from repro.bench.experiments import run_table5
from repro.runtime.channel import LatencyModel


def test_table5_runtime_overhead(once):
    result = once(run_table5, scale=1.0)
    print("\n" + result.render())
    rows = result.data
    for row in rows:
        assert row["after_ms"] > row["before_ms"], "splitting always costs time"
        assert row["increase_pct"] < 120, "overhead stays same order as paper"
    # the paper's band: a few percent up to ~60%
    worst = max(rows, key=lambda r: r["increase_pct"])
    best = min(rows, key=lambda r: r["increase_pct"])
    assert worst["benchmark"] == "javac"
    assert best["increase_pct"] < 5
    # overhead ranking correlates with interactions/base-time ratio
    def ratio(row):
        return row["interactions"] / row["before_ms"]

    by_ratio = sorted(rows, key=ratio)
    pcts = [r["increase_pct"] for r in by_ratio]
    # Spearman-ish: the top-ratio row must have higher overhead than the
    # bottom-ratio row, monotone across the extremes
    assert pcts[-1] > pcts[0]


def test_table5_batching_reduces_round_trips(once):
    """Extension: the communication optimisation layer (docs/PROTOCOL.md).

    With ``batching=True`` every workload must produce identical output in
    fewer channel round trips, and therefore less simulated time — the
    before/after table in docs/BENCHMARKS.md is regenerated from exactly
    this comparison."""
    base = run_table5(scale=1.0)
    batched = once(run_table5, scale=1.0, batching=True)
    print("\n" + batched.render())
    for off, on in zip(base.data, batched.data):
        label = "%s/%s" % (off["benchmark"], off["input"])
        assert on["interactions"] < off["interactions"], label
        assert on["after_ms"] < off["after_ms"], label
        assert on["before_ms"] == off["before_ms"], label


def test_table5_smart_card_latency_dominates(once):
    """Extension: the 'untrustworthy user' scenario — a smart-card-class
    device makes the same splits far more expensive than the LAN server."""
    lan = run_table5(scale=1.0, latency=LatencyModel.lan())
    card = once(run_table5, scale=1.0, latency=LatencyModel.smart_card())
    for lan_row, card_row in zip(lan.data, card.data):
        assert card_row["after_ms"] >= lan_row["after_ms"]
