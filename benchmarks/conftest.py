"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at full
corpus scale, prints the reproduction side by side with the paper's
numbers, and asserts the qualitative shape the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under the benchmark clock (the
    interesting measurements are inside the experiment, not its wall time)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
