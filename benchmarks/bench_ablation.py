"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Control-flow hiding on/off: hiding whole constructs is what produces
   variable path counts and hidden flow; without it every predicate leaks
   per-iteration (more interactions, weaker CC).
2. Predicate hiding on/off: pred fragments leak one boolean (Arbitrary);
   without them the raw hidden values leak (the ILP population gets easier).
3. Variable selection: the paper's max-complexity strategy vs. picking the
   first candidate.
"""

from repro.analysis.function import analyze_function
from repro.bench.experiments import _corpus  # shared corpus cache
from repro.core.pipeline import auto_split
from repro.core.selection import select_variable, splittable_variables
from repro.core.splitter import SplitOptions
from repro.lang import check_program, parse_program
from repro.bench.paperexamples import FIG2_SOURCE
from repro.core.program import split_program
from repro.runtime.channel import LatencyModel
from repro.runtime.splitrun import run_split
from repro.security.lattice import CType, TYPE_ORDER
from repro.security.report import analyze_split_security


def _fig2(options=None):
    program = parse_program(FIG2_SOURCE)
    checker = check_program(program)
    sp = split_program(program, checker, [("f", "a")], options=options)
    return program, checker, sp


def test_ablation_control_flow_hiding(once):
    def run():
        _, checker_on, with_cf = _fig2(SplitOptions(hide_control_flow=True))
        _, checker_off, without_cf = _fig2(SplitOptions(hide_control_flow=False))
        report_on = analyze_split_security(with_cf, checker_on, "cf-on")
        report_off = analyze_split_security(without_cf, checker_off, "cf-off")
        on_run = run_split(with_cf, latency=LatencyModel.instant())
        off_run = run_split(without_cf, latency=LatencyModel.instant())
        return report_on, report_off, on_run, off_run

    report_on, report_off, on_run, off_run = once(run)
    print(
        "\ncontrol-flow hiding ON : flow_hidden=%d interactions=%d"
        % (report_on.flow_hidden_count(), on_run.interactions)
    )
    print(
        "control-flow hiding OFF: flow_hidden=%d interactions=%d"
        % (report_off.flow_hidden_count(), off_run.interactions)
    )
    # hiding control flow is what hides flow...
    assert report_on.flow_hidden_count() > 0
    assert report_off.flow_hidden_count() == 0
    # ...and it also *reduces* communication: the hidden loop runs entirely
    # on the secure side instead of leaking its predicate per iteration
    assert on_run.interactions < off_run.interactions


def test_ablation_predicate_hiding(once):
    def run():
        _, ck_on, preds_on = _fig2(SplitOptions(hide_predicates=True))
        _, ck_off, preds_off = _fig2(SplitOptions(hide_predicates=False))
        return (
            analyze_split_security(preds_on, ck_on, "pred-on"),
            analyze_split_security(preds_off, ck_off, "pred-off"),
        )

    report_on, report_off = once(run)
    hist_on = report_on.type_histogram()
    print("\npredicates ON : %r" % hist_on)
    print("predicates OFF: %r" % report_off.type_histogram())
    assert report_on.predicates_hidden_count() >= report_off.predicates_hidden_count()
    assert hist_on[CType.ARBITRARY] > 0


def _max_type(report):
    ranks = [TYPE_ORDER.index(c.ac.type) for c in report.complexities]
    return max(ranks) if ranks else -1


def test_ablation_variable_selection(once):
    """The paper selects the local variable creating the highest maximum
    arithmetic complexity; first-candidate selection must never beat it."""

    def run():
        corpus = _corpus("jasmin", 0.06)
        best = auto_split(corpus.program, corpus.checker)
        first_choices = []
        for name in corpus.candidate_names:
            fn = corpus.program.function(name)
            analysis = analyze_function(fn, corpus.checker)
            names = splittable_variables(fn, analysis)
            if names:
                first_choices.append((name, names[0]))
        naive = split_program(corpus.program, corpus.checker, first_choices)
        return (
            analyze_split_security(best, corpus.checker, "best"),
            analyze_split_security(naive, corpus.checker, "naive"),
        )

    report_best, report_naive = once(run)
    print("\nbest-variable : %r" % report_best.type_histogram())
    print("first-variable: %r" % report_naive.type_histogram())
    assert _max_type(report_best) >= _max_type(report_naive)


def test_ablation_latency_models(once):
    """Same split, three deployment targets: instant (co-located), LAN
    (untrustworthy-server scenario), smart card (untrustworthy-user)."""

    def run():
        _, _, sp = _fig2()
        return {
            "instant": run_split(sp, latency=LatencyModel.instant()),
            "lan": run_split(sp, latency=LatencyModel.lan()),
            "card": run_split(sp, latency=LatencyModel.smart_card()),
        }

    results = once(run)
    ms = {k: v.channel.simulated_ms for k, v in results.items()}
    print("\nchannel cost: %r" % ms)
    assert ms["instant"] == 0.0
    assert ms["card"] > ms["lan"] > 0.0
    # identical traffic either way
    assert results["lan"].interactions == results["card"].interactions


def test_ablation_fetch_caching(once):
    """Communication optimisation (extension): reusing fetched hidden
    values along straight-line open code cuts round trips without changing
    behaviour — at the cost of the adversary seeing each value once less."""
    source = """
    func int g(int v) { return v + 1; }
    func int chatty(int x, int[] B) {
        int h = x * 3 + 1;
        int r1 = g(h);
        int r2 = g(h);
        int r3 = g(h);
        B[0] = r1 + r2 + r3;
        return h;
    }
    func void main(int x) {
        int[] B = new int[2];
        print(chatty(x, B));
        print(B[0]);
    }
    """

    def run():
        program = parse_program(source)
        checker = check_program(program)
        plain = split_program(program, checker, [("chatty", "h")])
        cached = split_program(
            program, checker, [("chatty", "h")],
            options=SplitOptions(cache_fetches=True),
        )
        from repro.runtime.splitrun import check_equivalence

        check_equivalence(program, cached, args=(4,))
        return (
            run_split(plain, args=(4,), latency=LatencyModel.instant()),
            run_split(cached, args=(4,), latency=LatencyModel.instant()),
        )

    plain_run, cached_run = once(run)
    print(
        "\nfetch caching: %d -> %d interactions"
        % (plain_run.interactions, cached_run.interactions)
    )
    assert cached_run.interactions < plain_run.interactions
    assert cached_run.output == plain_run.output
