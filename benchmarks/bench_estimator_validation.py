"""Cross-validation of the static complexity estimator (extension).

The Fig. 3 estimator claims a *lower bound* on each ILP's arithmetic
complexity.  This benchmark plays the adversary against a whole corpus's
split functions and checks the claim empirically: no ILP may be recovered
by a technique *weaker* than its static class (path mixing may push the
empirical class above the bound, never below).
"""

import random

from repro.attack.classify import validate_estimator
from repro.bench.experiments import _corpus, split_corpus
from repro.bench.tables import Table
from repro.security.lattice import CType


def test_estimator_validated_against_recovery(once):
    def run():
        corpus = _corpus("jasmin", 0.06)
        sp = split_corpus("jasmin", 0.06)
        rng = random.Random(99)
        runs = [(rng.randint(1, 40), rng.randint(5, 60)) for _ in range(40)]
        return validate_estimator(sp, corpus.checker, runs)

    report = once(run)
    table = Table(
        "Estimator vs. empirical recovery (jasmin-like corpus)",
        ["Fragment", "Static AC", "Empirical", "Consistent"],
    )
    for fn_name, label, static_ac, empirical, ok in report:
        table.add_row("%s#%d" % (fn_name, label), str(static_ac), repr(empirical), ok)
    print("\n" + table.render())

    assert report, "corpus runs must produce observable ILP traffic"
    inconsistent = [row for row in report if not row[4]]
    assert not inconsistent, "static estimate exceeded empirical class: %r" % (
        inconsistent,
    )
    # sanity: both easy and hard ILPs appeared
    empirical_types = {row[3].type for row in report}
    assert CType.ARBITRARY in empirical_types or CType.POLYNOMIAL in empirical_types
    assert CType.LINEAR in empirical_types or CType.CONSTANT in empirical_types
