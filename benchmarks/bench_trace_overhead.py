"""Distributed-tracing overhead on the real wire (BENCH_trace.json).

Tracing (``--trace``, docs/OBSERVABILITY.md) must be free when it is off
and cheap when it is on.  This benchmark runs the same TCP ``run-split``
workload in two cells:

* ``plain`` — trace off, telemetry off: the seed configuration, the exact
  code path an untraced run takes;
* ``recorded`` — trace off, but a flight recorder and metrics registry
  live (``--log-events``): isolates the pre-existing telemetry cost;
* ``traced`` — trace context stamped on every frame, phase timing
  measured, same telemetry live: the increment over ``recorded`` is what
  tracing itself costs.

Both cells must agree *exactly* on output, step counts, round-trip count,
and transcript event-kind sequence — tracing rides in additive frame
fields and an uncounted handshake, so its accounting is bit-identical
(``off_accounting_identical`` in the report; the oracle's
``socket-compiled-traced`` cell fuzzes the same property).  The committed
numbers are guarded by ``tools/check_trace.py``.

Regenerate with::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py \
        --output BENCH_trace.json
"""

import argparse
import json
import sys
import time

from repro import obs
from repro.lang import check_program, parse_program
from repro.core.program import split_program
from repro.obs.events import FlightRecorder
from repro.runtime.remote import remote_server, run_split_remote

#: one hidden-fragment call per loop iteration -> ITERS round trips of
#: real wire traffic per run
SOURCE = """
func int f(int x) {
    int a = x * 3 + 1;
    int b = a - 2;
    return a + b;
}
func int main(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + f(i);
        i = i + 1;
    }
    return s;
}
"""

ITERS = 150
REPEATS = 3


def _split():
    program = parse_program(SOURCE)
    checker = check_program(program)
    return split_program(program, checker, [("f", "a")])


def _fingerprint(result):
    """Everything tracing must not change."""
    kinds = tuple(e.kind for e in result.channel.transcript.events)
    return (result.value, tuple(result.output), result.steps_open,
            result.interactions, kinds)


def _run_cell(sp, address, iters, mode):
    started = time.perf_counter()
    if mode == "plain":
        result = run_split_remote(sp, address, args=(iters,))
    else:
        with obs.telemetry(recorder=FlightRecorder(process="Of")):
            result = run_split_remote(sp, address, args=(iters,),
                                      trace=(mode == "traced"))
    elapsed = time.perf_counter() - started
    return result, elapsed


def _measure(sp, address, iters, mode, repeats):
    best_s = None
    fingerprint = None
    for _ in range(repeats):
        result, elapsed = _run_cell(sp, address, iters, mode)
        fingerprint = _fingerprint(result)
        best_s = elapsed if best_s is None else min(best_s, elapsed)
    return {
        "round_trips": fingerprint[3],
        "best_s": round(best_s, 6),
        "rt_per_s": round(fingerprint[3] / best_s, 1),
    }, fingerprint


def run_suite(iters=ITERS, repeats=REPEATS):
    sp = _split()
    cells = {}
    fingerprints = {}
    with remote_server(sp) as address:
        for mode in ("plain", "recorded", "traced"):
            cells[mode], fingerprints[mode] = _measure(
                sp, address, iters, mode, repeats)
    return {
        "description": "TCP run-split round-trip throughput: telemetry "
                       "off / recorder on / tracing on (best of %d)"
                       % repeats,
        "iters": iters,
        "cells": cells,
        # what enabling telemetry at all costs (pre-existing)
        "telemetry_overhead_pct": round(
            100.0 * (cells["plain"]["rt_per_s"]
                     / cells["recorded"]["rt_per_s"] - 1.0), 2),
        # what tracing adds on top of live telemetry
        "trace_overhead_pct": round(
            100.0 * (cells["recorded"]["rt_per_s"]
                     / cells["traced"]["rt_per_s"] - 1.0), 2),
        "off_accounting_identical": (
            fingerprints["plain"] == fingerprints["recorded"]
            == fingerprints["traced"]
        ),
    }


# -- pytest smoke entry point (CI: tracing must not change accounting) --------


def test_traced_run_accounting_identical_smoke():
    sp = _split()
    with remote_server(sp) as address:
        plain, _ = _run_cell(sp, address, 25, "plain")
        traced, _ = _run_cell(sp, address, 25, "traced")
    assert _fingerprint(plain) == _fingerprint(traced)


def main(argv=None):
    parser = argparse.ArgumentParser(prog="bench_trace_overhead")
    parser.add_argument("--iters", type=int, default=ITERS)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--output", help="write JSON here (default stdout)")
    args = parser.parse_args(argv)

    report = run_suite(iters=args.iters, repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print("wrote %s" % args.output)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
