"""Interpreter throughput: AST walker vs closure tier vs codegen tier.

Measures warm steady-state statements/second for every registered engine
(``repro.runtime.ENGINES``) on the five Table 5 workloads and on a tight
arithmetic loop (the best case for compilation: almost no per-statement
work besides dispatch).  All engines are bit-identical —
tests/test_engine_equivalence.py proves it — so this file only measures.

Methodology: one interpreter per engine, a warm-up run first (compilation
and caches amortise there, reported separately as ``compile_seconds``),
then best-of-N timed runs measured by steps-delta over wall clock.  The
compile cost per engine comes from the
``repro_engine_compile_seconds{engine=...}`` histogram.

Run as a script to regenerate the committed results::

    PYTHONPATH=src python benchmarks/bench_interpreter_speed.py \
        --output BENCH_interp.json

``tools/check_bench.py`` guards the committed numbers (compiled must never
be slower than ast, codegen must hold >=2x on every row and >=8x on the
tight loop).  The pytest entry points below are the CI smoke variants: a
small workload, asserting each compiled tier wins, without touching the
committed file.
"""

import argparse
import json
import sys
import time

from repro import obs
from repro.lang import check_program, parse_program
from repro.runtime import ENGINES
from repro.runtime.compile import M_COMPILE_SECONDS
from repro.runtime.interpreter import Interpreter
from repro.workloads.corpora import SPECS, build_corpus

TIGHT_LOOP_SRC = """
func int main(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"""

TIGHT_LOOP_N = 200_000
WORKLOAD_SCALE = 0.25
WORKLOAD_ARGS = (2, 30)
REPEATS = 3


def _compile_seconds(registry, engine):
    total = 0.0
    for m in registry.collect():
        if m.name == M_COMPILE_SECONDS and m.labels.get("engine") == engine:
            total += m.sum
    return total


def _throughput(program, args, engine, repeats=REPEATS):
    """Warm best-of-N statements/second for one program under one engine.

    The first (untimed) run pays compilation and cache population; its
    cost is reported separately so the steady-state rate is comparable
    across engines.
    """
    with obs.telemetry() as (registry, _tracer):
        interp = Interpreter(program, engine=engine)
        value = interp.run("main", args)
        compile_seconds = _compile_seconds(registry, engine)
    steps = interp.steps
    best = 0.0
    for _ in range(repeats):
        before = interp.steps
        started = time.perf_counter()
        interp.run("main", args)
        elapsed = time.perf_counter() - started
        best = max(best, (interp.steps - before) / elapsed)
    return {
        "value": value,
        "steps": steps,
        "stmts_per_s": best,
        "compile_seconds": compile_seconds,
    }


def _measure(program, args, repeats=REPEATS):
    runs = {engine: _throughput(program, args, engine, repeats)
            for engine in ENGINES}
    # throughput may differ; the computation must not
    for engine in ENGINES:
        assert runs["ast"]["value"] == runs[engine]["value"], engine
        assert runs["ast"]["steps"] == runs[engine]["steps"], engine
    ast_rate = runs["ast"]["stmts_per_s"]
    row = {"steps": runs["ast"]["steps"]}
    for engine in ENGINES:
        row["%s_stmts_per_s" % engine] = round(runs[engine]["stmts_per_s"])
    row["speedup"] = round(runs["compiled"]["stmts_per_s"] / ast_rate, 2)
    row["codegen_speedup"] = round(runs["codegen"]["stmts_per_s"] / ast_rate, 2)
    row["compile_seconds"] = {
        engine: round(runs[engine]["compile_seconds"], 6)
        for engine in ENGINES
        if engine != "ast"
    }
    return row


def _tight_loop_program():
    program = parse_program(TIGHT_LOOP_SRC)
    check_program(program)
    return program


def run_suite(scale=WORKLOAD_SCALE, tight_n=TIGHT_LOOP_N, repeats=REPEATS):
    results = {"tight_loop": _measure(_tight_loop_program(), (tight_n,),
                                      repeats)}
    for name in sorted(SPECS):
        corpus = build_corpus(name, scale=scale)
        results[name] = _measure(corpus.program, WORKLOAD_ARGS, repeats)
    return {
        "description": "interpreter throughput by engine (warm steady "
                       "state, statements/second, best of %d)" % repeats,
        "engines": list(ENGINES),
        "scale": scale,
        "tight_loop_n": tight_n,
        "workloads": results,
    }


# -- pytest smoke entry points (CI: the compiled tiers must win) ---------------


def test_compiled_engine_not_slower_smoke():
    report = _measure(_tight_loop_program(), (50_000,), repeats=2)
    assert report["speedup"] >= 1.0, report


def test_codegen_engine_faster_smoke():
    report = _measure(_tight_loop_program(), (50_000,), repeats=2)
    assert report["codegen_speedup"] >= 2.0, report


def main(argv=None):
    parser = argparse.ArgumentParser(prog="bench_interpreter_speed")
    parser.add_argument("--scale", type=float, default=WORKLOAD_SCALE)
    parser.add_argument("--tight-n", type=int, default=TIGHT_LOOP_N)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--output", help="write JSON here (default stdout)")
    args = parser.parse_args(argv)

    report = run_suite(scale=args.scale, tight_n=args.tight_n,
                       repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print("wrote %s" % args.output)
    else:
        sys.stdout.write(text)
    for name, row in sorted(report["workloads"].items()):
        print("%-12s ast %9d/s  compiled %9d/s (%5.2fx)  "
              "codegen %9d/s (%5.2fx)"
              % (name, row["ast_stmts_per_s"], row["compiled_stmts_per_s"],
                 row["speedup"], row["codegen_stmts_per_s"],
                 row["codegen_speedup"]))
        print("%-12s   compile seconds: %s"
              % ("", json.dumps(row["compile_seconds"], sort_keys=True)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
