"""Interpreter throughput: AST walker vs the closure-compiled engine.

Measures statements/second for both engines on the five Table 5 workloads
and on a tight arithmetic loop (the best case for compilation: almost no
per-statement work besides dispatch).  Both engines are bit-identical —
tests/test_engine_equivalence.py proves it — so this file only measures.

Run as a script to regenerate the committed results::

    PYTHONPATH=src python benchmarks/bench_interpreter_speed.py \
        --output BENCH_interp.json

``tools/check_bench.py`` guards the committed numbers (compiled must never
be slower, and the tight loop must hold at least a 2x speedup).  The pytest
entry point below is the CI smoke variant: a small workload, asserting the
compiled engine wins, without touching the committed file.
"""

import argparse
import json
import sys
import time

from repro.lang import check_program, parse_program
from repro.runtime.compile import ENGINES
from repro.runtime.interpreter import Interpreter
from repro.workloads.corpora import SPECS, build_corpus

TIGHT_LOOP_SRC = """
func int main(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}
"""

TIGHT_LOOP_N = 200_000
WORKLOAD_SCALE = 0.25
WORKLOAD_ARGS = (2, 30)
REPEATS = 3


def _throughput(program, args, engine, repeats=REPEATS):
    """Best-of-N statements/second for one program under one engine."""
    best = 0.0
    value = steps = None
    for _ in range(repeats):
        interp = Interpreter(program, engine=engine)
        started = time.perf_counter()
        value = interp.run("main", args)
        elapsed = time.perf_counter() - started
        steps = interp.steps
        best = max(best, steps / elapsed)
    return {"value": value, "steps": steps, "stmts_per_s": best}


def _measure(program, args, repeats=REPEATS):
    runs = {engine: _throughput(program, args, engine, repeats)
            for engine in ENGINES}
    # throughput may differ; the computation must not
    assert runs["ast"]["value"] == runs["compiled"]["value"]
    assert runs["ast"]["steps"] == runs["compiled"]["steps"]
    ast_rate = runs["ast"]["stmts_per_s"]
    compiled_rate = runs["compiled"]["stmts_per_s"]
    return {
        "steps": runs["ast"]["steps"],
        "ast_stmts_per_s": round(ast_rate),
        "compiled_stmts_per_s": round(compiled_rate),
        "speedup": round(compiled_rate / ast_rate, 2),
    }


def _tight_loop_program():
    program = parse_program(TIGHT_LOOP_SRC)
    check_program(program)
    return program


def run_suite(scale=WORKLOAD_SCALE, tight_n=TIGHT_LOOP_N, repeats=REPEATS):
    results = {"tight_loop": _measure(_tight_loop_program(), (tight_n,),
                                      repeats)}
    for name in sorted(SPECS):
        corpus = build_corpus(name, scale=scale)
        results[name] = _measure(corpus.program, WORKLOAD_ARGS, repeats)
    return {
        "description": "interpreter throughput, ast vs compiled engine "
                       "(statements/second, best of %d)" % repeats,
        "scale": scale,
        "tight_loop_n": tight_n,
        "workloads": results,
    }


# -- pytest smoke entry point (CI: compiled must not be slower) ---------------


def test_compiled_engine_not_slower_smoke():
    report = _measure(_tight_loop_program(), (50_000,), repeats=2)
    assert report["speedup"] >= 1.0, report


def main(argv=None):
    parser = argparse.ArgumentParser(prog="bench_interpreter_speed")
    parser.add_argument("--scale", type=float, default=WORKLOAD_SCALE)
    parser.add_argument("--tight-n", type=int, default=TIGHT_LOOP_N)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--output", help="write JSON here (default stdout)")
    args = parser.parse_args(argv)

    report = run_suite(scale=args.scale, tight_n=args.tight_n,
                       repeats=args.repeats)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print("wrote %s" % args.output)
    else:
        sys.stdout.write(text)
    for name, row in sorted(report["workloads"].items()):
        print("%-12s ast %9d/s  compiled %9d/s  %.2fx"
              % (name, row["ast_stmts_per_s"], row["compiled_stmts_per_s"],
                 row["speedup"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
