"""Fig. 2: the paper's worked splitting example.

Splitting ``f`` on variable ``a`` yields exactly four ILPs, and the return
ILP measures the paper's headline characterisation:

    AC = <Polynomial, 4, 2>      CC = <variable, hidden, hidden>
"""

from repro.bench.experiments import run_fig2_experiment
from repro.security.lattice import CType


def test_fig2_worked_example(once):
    result = once(run_fig2_experiment)
    print("\n" + result.render())
    assert result.data["ilp_count"] == 4
    by_kind = {c.ilp.kind: c for c in result.data["complexities"]}
    ret = by_kind["return"]
    assert (ret.ac.type, ret.ac.input_count(), ret.ac.degree) == (
        CType.POLYNOMIAL,
        4,
        2,
    )
    assert ret.cc.paths_variable
    assert ret.cc.predicates == "hidden"
    assert ret.cc.flow == "hidden"
    # the hidden branch predicate leaks only a boolean: Arbitrary
    assert by_kind["pred"].ac.type == CType.ARBITRARY
    # splitting preserved behaviour and cost a bounded number of round trips
    assert result.data["interactions"] > 0
