"""Extension: the path-aware adversary.

The paper's Section 3 argues that control flow defeats automated recovery
because observations mix paths and "it is unclear how this path based
categorization can be achieved."  The splitting transformation, however,
leaks every open-construct branch direction through its ``pred`` fragment
— so the categorization *is* achievable whenever predicates are merely
hidden rather than the construct moved.

This benchmark quantifies the resulting security ladder on the Fig. 2
program:

* flat attack: the multi-path return ILP resists (the paper's claim);
* path-aware attack: the leaked-predicate partition recovers the
  taken-branch subgroup (predicate hiding alone is breakable);
* the subgroup still containing the *hidden loop's* regime boundary — for
  which no predicate ever crosses the wire — keeps resisting: full
  control-flow hiding is strictly stronger than predicate hiding.
"""

import random

from repro.attack.driver import attack_split_program
from repro.attack.pathsplit import attack_with_path_split
from repro.bench.paperexamples import FIG2_SOURCE
from repro.bench.tables import Table
from repro.core.program import split_program
from repro.lang import check_program, parse_program


def test_path_aware_adversary_ladder(once):
    def run():
        program = parse_program(FIG2_SOURCE)
        checker = check_program(program)
        sp = split_program(program, checker, [("f", "a")])
        rng = random.Random(41)
        arg_sets = [
            (rng.randint(0, 9), rng.randint(0, 9), rng.randint(5, 40), rng.randint(0, 60))
            for _ in range(150)
        ]
        flat = attack_split_program(sp, arg_sets, entry="run")
        aware = attack_with_path_split(sp, arg_sets, entry="run")
        return sp, flat, aware

    sp, flat, aware = once(run)
    return_label = [i.label for i in sp.splits["f"].ilps if i.kind == "return"][0]
    key = ("f", return_label)

    table = Table(
        "Fig. 2 return ILP under escalating adversaries",
        ["Adversary", "Outcome", "Detail"],
    )
    flat_outcome = flat[key]
    aware_outcome = aware[key]
    table.add_row(
        "flat (paper's)",
        "resisted" if not flat_outcome.broken else "BROKEN",
        "%d mixed-path samples" % len(flat_outcome.trace),
    )
    broken_paths = sum(1 for o in aware_outcome.assessed.values() if o.broken)
    table.add_row(
        "path-aware",
        "partial" if aware_outcome.partially_broken and not aware_outcome.broken
        else ("BROKEN" if aware_outcome.broken else "resisted"),
        "%d/%d path subgroups recovered"
        % (broken_paths, len(aware_outcome.assessed)),
    )
    print("\n" + table.render())

    assert not flat_outcome.broken
    assert aware_outcome.partially_broken
    assert not aware_outcome.broken  # the hidden loop's regime survives
