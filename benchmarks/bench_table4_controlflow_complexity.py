"""Table 4: control flow complexity of ILPs.

Paper shape: "the control flow complexity is quite high as numerous ILPs
depend upon hidden predicates and hidden control flow"; javac (and jfig)
additionally show runtime-variable path counts from hidden loops.
"""

from repro.bench.experiments import run_table4


def test_table4_controlflow_complexity(once):
    result = once(run_table4, scale=1.0)
    print("\n" + result.render())
    data = result.data
    for name, (paths_var, preds_hidden, flow_hidden) in data.items():
        assert preds_hidden > 0, "%s: some predicates must be hidden" % name
        assert preds_hidden >= flow_hidden
    # hidden whole loops give javac variable path counts (paper: 3)
    assert data["javac"][0] > 0
    # a substantial fraction of all ILPs depend on hidden predicates
    from repro.bench.experiments import run_table2

    ilp_totals = {n: row[2] for n, row in run_table2(scale=1.0).data.items()}
    hidden_fraction = sum(r[1] for r in data.values()) / sum(ilp_totals.values())
    assert hidden_fraction > 0.25
