"""Section 3, made quantitative: recovery sample cost vs. complexity.

"Second[,] depending upon the number of inputs involved and the degree of
the polynomials, a large number of input output pairs for the f_ILP may be
needed to recover the code."  This benchmark measures exactly that curve:
the samples the adversary needs to recover synthetic hidden functions as
their polynomial degree and input count grow — the quantitative backbone
of the paper's claim that complex slices are expensive to break.
"""

import random

from repro.attack.polynomial import fit_polynomial, monomials
from repro.attack.trace import ILPTrace
from repro.bench.tables import Table


def _make_poly(n_vars, degree, rng):
    basis = monomials(n_vars, degree)
    coeffs = [rng.randint(1, 5) for _ in basis]

    def fn(xs):
        total = 0
        for c, exps in zip(coeffs, basis):
            term = c
            for x, e in zip(xs, exps):
                term *= x ** e
            total += term
        return total

    return fn


def _trace_for(fn, n_vars, n_samples, rng):
    trace = ILPTrace("t", 0)
    for _ in range(n_samples):
        xs = [rng.randint(-9, 9) for _ in range(n_vars)]
        trace.add({"L0[%d]" % i: x for i, x in enumerate(xs)}, fn(xs))
    return trace


def test_sample_cost_grows_with_degree_and_inputs(once):
    def run():
        rng = random.Random(7)
        rows = []
        for n_vars in (1, 2, 3, 4):
            for degree in (1, 2, 3):
                fn = _make_poly(n_vars, degree, rng)
                trace = _trace_for(fn, n_vars, 400, rng)
                fit = fit_polynomial(trace, degree=degree, tol=1e-6)
                rows.append(
                    {
                        "inputs": n_vars,
                        "degree": degree,
                        "coeffs": len(monomials(n_vars, degree)),
                        "samples": fit.samples_used if fit.success else None,
                        "success": fit.success,
                    }
                )
        return rows

    rows = once(run)
    table = Table(
        "Samples needed to recover a polynomial ILP (paper Sec. 3, claim 2)",
        ["Inputs", "Degree", "Coefficients", "Samples needed"],
    )
    for r in rows:
        table.add_row(
            r["inputs"],
            r["degree"],
            r["coeffs"],
            r["samples"] if r["success"] else "failed",
        )
    print("\n" + table.render())

    assert all(r["success"] for r in rows)
    # samples needed track the coefficient count (identifiability floor)
    for r in rows:
        assert r["samples"] >= r["coeffs"]
    # and grow monotonically with degree at fixed input count ...
    for n_vars in (1, 2, 3, 4):
        per_degree = [r["samples"] for r in rows if r["inputs"] == n_vars]
        assert per_degree == sorted(per_degree)
    # ... and with input count at fixed degree
    for degree in (1, 2, 3):
        per_inputs = [r["samples"] for r in rows if r["degree"] == degree]
        assert per_inputs == sorted(per_inputs)
    # the paper's point, concretely: 4 inputs at degree 3 needs an order of
    # magnitude more observations than 1 input at degree 1
    small = [r for r in rows if r["inputs"] == 1 and r["degree"] == 1][0]
    big = [r for r in rows if r["inputs"] == 4 and r["degree"] == 3][0]
    assert big["samples"] >= 10 * small["samples"]
