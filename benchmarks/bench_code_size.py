"""Extension: code-size overhead of splitting.

The paper notes that competing protections (obfuscation, guards) carry
code-size costs but reports none for splitting.  This benchmark fills that
in for the reproduction: per corpus, how many statements the split
functions gained (open + hidden vs. original), and how large the shipped
deployment manifest is relative to the original source.
"""

from repro.bench.experiments import TABLE2_ORDER, _corpus, split_corpus
from repro.bench.tables import Table
from repro.core.deploy import export_split_json
from repro.lang.pretty import pretty


def test_code_size_overhead(once):
    def run():
        rows = []
        for name in TABLE2_ORDER:
            corpus = _corpus(name, 0.06)
            sp = split_corpus(name, 0.06)
            stats = sp.stats()
            original = sum(s["original_stmts"] for s in stats.values())
            open_side = sum(s["open_stmts"] for s in stats.values())
            hidden_side = sum(s["hidden_stmts"] for s in stats.values())
            manifest_bytes = len(export_split_json(sp, indent=None))
            source_bytes = len(pretty(corpus.program))
            rows.append(
                {
                    "name": name,
                    "original": original,
                    "open": open_side,
                    "hidden": hidden_side,
                    "bloat_pct": 100.0 * (open_side + hidden_side - original) / original,
                    "manifest_bytes": manifest_bytes,
                    "source_bytes": source_bytes,
                }
            )
        return rows

    rows = once(run)
    table = Table(
        "Code size overhead of splitting (split functions only)",
        ["Benchmark", "Original stmts", "Open", "Hidden", "Growth", "Manifest (KB)"],
    )
    for r in rows:
        table.add_row(
            r["name"],
            r["original"],
            r["open"],
            r["hidden"],
            "%.0f%%" % r["bloat_pct"],
            "%.1f" % (r["manifest_bytes"] / 1024.0),
        )
    print("\n" + table.render())

    for r in rows:
        # splitting duplicates interface plumbing: some growth is expected,
        # runaway growth is a bug
        assert r["open"] + r["hidden"] >= r["original"]
        assert r["bloat_pct"] < 200.0
        # the manifest (which embeds the whole open program) stays within a
        # small multiple of the original source
        assert r["manifest_bytes"] < 6 * r["source_bytes"]
