"""Table 2: split characteristics — methods sliced, statements in the
constructed slices, resulting ILP counts.

Paper shape: a handful of methods per program (6-17), slices of tens to
hundreds of statements, tens to hundreds of ILPs; jfig by far the largest,
jasmin the smallest.
"""

from repro.bench.experiments import PAPER_TABLE2, run_table2


def test_table2_split_characteristics(once):
    result = once(run_table2, scale=1.0)
    print("\n" + result.render())
    for name, (sliced, stmts, ilps) in result.data.items():
        assert sliced == PAPER_TABLE2[name][0]
        assert stmts >= 2 * sliced  # slices are real, not single statements
        assert ilps >= sliced  # every split method leaks somewhere
    data = result.data
    assert data["jfig"][1] == max(r[1] for r in data.values())
    assert data["jfig"][2] == max(r[2] for r in data.values())
    assert data["jasmin"][1] == min(r[1] for r in data.values())
