"""Table 3: arithmetic complexity of ILPs.

Paper shape: Linear and Arbitrary dominate everywhere; jfig (arithmetic
heavy) contributes the Polynomial/Rational mass and the highest degree;
bloat has the most Constant ILPs; javac's input count is "varying" because
whole loops were hidden and a different array element streams to the hidden
side each iteration.
"""

from repro.bench.experiments import run_table3
from repro.security.lattice import CType, VARYING


def test_table3_arithmetic_complexity(once):
    result = once(run_table3, scale=1.0)
    print("\n" + result.render())
    data = result.data

    # Linear + Arbitrary dominate overall (paper: most ILPs in these classes)
    total = sum(sum(hist.values()) for hist, _i, _d in data.values())
    lin_arb = sum(
        hist[CType.LINEAR] + hist[CType.ARBITRARY] for hist, _i, _d in data.values()
    )
    assert lin_arb / total > 0.4

    # every benchmark has Arbitrary ILPs (hidden predicates are everywhere)
    for name, (hist, _inputs, _degree) in data.items():
        assert hist[CType.ARBITRARY] > 0

    # jfig: the only Rational population, the max degree
    assert data["jfig"][0][CType.RATIONAL] > 0
    for name in ("javac", "jess", "jasmin", "bloat"):
        assert data[name][0][CType.RATIONAL] == 0
    assert data["jfig"][2] == max(r[2] for r in data.values())
    assert data["jfig"][2] >= 4

    # javac: varying inputs
    assert data["javac"][1] == VARYING

    # bloat: the largest Constant population (configuration flags)
    assert data["bloat"][0][CType.CONSTANT] == max(
        r[0][CType.CONSTANT] for r in data.values()
    )
