"""Concurrent-load benchmark: many synthetic clients, one multi-tenant daemon.

The acceptance bar for the daemon rework (docs/OPERATIONS.md): the load
harness must sustain 100 concurrent clients against a single daemon
serving all four Table 5 corpora as tenants, with zero protocol errors.
This benchmark runs exactly that and writes the committed numbers
(BENCH_load.json) that ``tools/check_load.py`` guards in CI.

Regenerate with::

    PYTHONPATH=src python benchmarks/bench_loadgen.py --output BENCH_load.json
"""

import argparse
import json
import sys

from repro.bench.experiments import run_loadgen_experiment

SCALE = 0.3
CLIENTS_TOTAL = 100


def run_suite(scale=SCALE, clients_total=CLIENTS_TOTAL):
    result = run_loadgen_experiment(scale=scale, clients_total=clients_total)
    reports = result.data["reports"]
    return {
        "description": "concurrent synthetic-client load against one "
                       "multi-tenant hidden-component daemon "
                       "(per-tenant fleets offered simultaneously)",
        "scale": scale,
        "clients_total": result.data["clients_total"],
        "tenants": result.data["tenants"],
        "protocol_errors": sum(
            r["errors"]["protocol"] for r in reports.values()),
        "reports": reports,
    }


# -- pytest smoke entry point (CI: small fleet, zero protocol errors) ---------


def test_loadgen_fleet_has_no_protocol_errors_smoke():
    report = run_suite(scale=0.1, clients_total=8)
    assert report["clients_total"] == 8
    assert len(report["tenants"]) == 4
    assert report["protocol_errors"] == 0
    for tenant_report in report["reports"].values():
        assert tenant_report["errors"] == {
            "protocol": 0, "reply": 0, "skipped_ops": 0}
        assert tenant_report["latency_ms"]["p95"] > 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="bench_loadgen")
    parser.add_argument("--scale", type=float, default=SCALE)
    parser.add_argument("--clients", type=int, default=CLIENTS_TOTAL)
    parser.add_argument("--output", help="write JSON here (default stdout)")
    args = parser.parse_args(argv)

    report = run_suite(scale=args.scale, clients_total=args.clients)
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print("wrote %s" % args.output)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
