"""Section 3, "Practical Limitations of Automated Recovery", executed.

The paper argues: linear regression recovers Linear ILPs, polynomial /
rational interpolation recover the next classes at higher sample cost, and
no automatic method recovers Arbitrary ILPs — while hidden control flow
partitions the observations into per-path groups the adversary cannot
separate.  This benchmark attacks every ILP of the Fig. 2 program and
checks exactly that correlation.
"""

from repro.bench.experiments import run_attack_experiment
from repro.security.lattice import CType


def test_attack_outcomes_follow_complexity(once):
    result = once(run_attack_experiment, n_runs=80)
    print("\n" + result.render())
    broken = {}
    resisted = []
    for row in result.data:
        ac = row["ac"]
        outcome = row["outcome"]
        if outcome.broken:
            broken[ac.type if ac else "?"] = outcome
        else:
            resisted.append(row)

    # Linear ILPs fall to linear regression with few samples
    assert CType.LINEAR in broken
    linear_win = broken[CType.LINEAR].winning
    assert linear_win.technique == "linear"
    assert linear_win.samples_used <= 12

    # Arbitrary ILPs (the hidden predicate) resist every technique
    assert any(
        row["ac"] is not None and row["ac"].type == CType.ARBITRARY
        for row in resisted
    )

    # the multi-path return value resists: the sample pool mixes paths
    assert any(row["outcome"].trace.label for row in resisted)
